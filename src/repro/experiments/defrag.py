"""The IP defragmentation experiment (§8.2.2).

60 iperf-style TCP flows from a client to a server with 8 receive cores.
Configurations:

* ``nofrag``      — 1500 B packets, no fragmentation: RSS spreads flows
                    across the cores; near line rate (paper: 23.2 Gbps).
* ``sw-defrag``   — a 1450 B-MTU hop fragments every packet; RSS falls
                    back to the 2-tuple, all fragments land on ONE core,
                    which also pays software reassembly (paper: 3.2 Gbps).
* ``hw-defrag``   — the FLD accelerator reassembles fragments mid-pipeline
                    and returns whole datagrams to steering, restoring RSS
                    (paper: 22.4 Gbps, a 7x speedup).
* ``vxlan-sw`` /
  ``vxlan-hw``    — the same with pre-fragmented traffic inside a VXLAN
                    tunnel; the NIC's decapsulation offload runs *before*
                    the accelerator.  The sender's software fragmentation
                    + encapsulation makes it the bottleneck in the hw case
                    (paper: 5.25x over the sw case).
"""

from __future__ import annotations

from types import SimpleNamespace
from typing import Dict, List, Optional

from ..accelerators import IpDefragAccelerator
from ..host import CpuCore
from ..net import (
    Ipv4,
    PROTO_TCP,
    Reassembler,
    RssEngine,
    Udp,
    VXLAN_PORT,
    fragment_packet,
    make_flows,
    vxlan_encapsulate,
)
from ..net.parse import parse_frame
from ..nic import (
    DecapVxlan,
    ForwardToRss,
    GotoTable,
    MatchSpec,
    RssGroup,
    ToAccelerator,
)
from ..sim import Simulator, ThroughputMeter
from ..sw import FldRuntime
from ..sweep import SweepCache, SweepPoint, run_sweep
from ..topology import (
    LinkSpec,
    NodeSpec,
    TopologySpec,
    VportSpec,
)
from ..topology import build as build_topology
from .setups import CLIENT_MAC, CLIENT_IP, Calibration, SERVER_IP, SERVER_MAC

NUM_CORES = 8
NUM_FLOWS = 60
FULL_MTU = 1500
SMALL_MTU = 1450
VNI = 100


class DefragCalibration(Calibration):
    """Extra constants for this experiment (documented in EXPERIMENTS.md).

    The receivers run a kernel TCP stack + iperf (not DPDK): the paper's
    23.2 Gbps across many cores and 3.2 Gbps on one core imply a
    per-packet receive cost of ~1.8 us and a software-reassembly cost of
    a few hundred ns per fragment.  The sender fragments (and for VXLAN
    encapsulates) in software.
    """

    kernel_rx_cycles = 4150        # ~1.8 us per packet at 2.3 GHz
    sw_defrag_cycles = 600         # extra per fragment when defragging
    client_frag_seconds = 50e-9    # software fragmentation, per packet
    client_encap_seconds = 300e-9  # software VXLAN encap, per packet


class _KernelReceiver:
    """One core's iperf server: counts TCP goodput (optionally after
    software reassembly)."""

    def __init__(self, sim: Simulator, qp, meter: ThroughputMeter,
                 software_defrag: bool):
        self.sim = sim
        self.qp = qp
        self.meter = meter
        self.software_defrag = software_defrag
        self.reassembler = Reassembler() if software_defrag else None
        qp.on_receive = self._on_receive
        self.stats_packets = 0

    def _on_receive(self, data: bytes, cqe) -> None:
        # Timing is charged by the queue's per-core dispatcher; here we
        # account the goodput functionally.
        self.stats_packets += 1
        packet = parse_frame(data)
        ip = packet.find(Ipv4)
        if ip is None:
            return
        if ip.is_fragment:
            if self.reassembler is None:
                return  # fragments without a defragger are useless
            whole = self.reassembler.add(packet, now=self.sim.now)
            if whole is None:
                return
            packet = whole
        payload_bytes = (packet.find(Ipv4).total_length
                         - Ipv4.HEADER_LEN - 20)  # minus TCP header
        self.meter.record(self.sim.now, max(0, payload_bytes))


def build(config: str, cal: Optional[DefragCalibration] = None):
    """Assemble the testbed for one §8.2.2 configuration."""
    if config not in ("nofrag", "sw-defrag", "hw-defrag", "vxlan-sw",
                      "vxlan-hw"):
        raise ValueError(f"unknown defrag config {config!r}")
    cal = cal or DefragCalibration()
    sim = Simulator()
    # The spec covers the static topology; the 8 per-core receive QPs
    # (each with its own kernel CpuCore) and the conditional FLD must
    # keep their historical interleaved construction, so they stay
    # imperative below.
    spec = TopologySpec(
        name=f"defrag-{config}",
        nodes=[NodeSpec(name="client", core="loadgen"),
               NodeSpec(name="server")],
        links=[LinkSpec(a="client", b="server")],
        vports=[VportSpec(node="client", vport=1, mac=CLIENT_MAC),
                VportSpec(node="server", vport=1, mac=SERVER_MAC)],
    )
    testbed = build_topology(sim, spec, cal=cal)
    client, server = testbed.node("client"), testbed.node("server")

    # 8 receive queues, each with its own kernel core.
    software_defrag = config in ("sw-defrag", "vxlan-sw")
    rx_cycles = cal.kernel_rx_cycles + (
        cal.sw_defrag_cycles if software_defrag else 0)
    meter = ThroughputMeter("goodput")
    meter.start(0.0)
    queues = []
    receivers = []
    for i in range(NUM_CORES):
        core = CpuCore(sim, cal.cpu_frequency_hz, rx_cycles,
                       os_jitter_probability=0.0)
        qp = server.driver.create_eth_qp(vport=1, core=core,
                                         register_default=False,
                                         rq_entries=2048)
        qp.post_rx_buffers(2048)
        queues.append(qp)
        receivers.append(_KernelReceiver(sim, qp, meter, software_defrag))

    engine = RssEngine(queues=list(range(NUM_CORES)))
    group = RssGroup("iperf", [qp.rq for qp in queues], engine)

    # Steering on the server vPort.
    table = server.nic.steering.table(
        server.nic.eswitch.vports[1].rx_root)
    accel = None
    if config in ("hw-defrag", "vxlan-hw"):
        runtime = FldRuntime(server, fld_config=cal.fld_config())
        fld_rq = runtime.create_rx_queue(vport=1, set_default=False)
        txq = runtime.create_eth_tx_queue(vport=1)
        accel = IpDefragAccelerator(sim, runtime.fld, units=1,
                                    tx_queue=txq)
        resume = server.nic.steering.table("post-defrag")
        resume.default_actions = [ForwardToRss(group)]
        runtime.ctrl.add_resume_table("post-defrag")
        frag_actions = [ToAccelerator(fld_rq, "post-defrag")]
    else:
        frag_actions = [ForwardToRss(group)]

    if config.startswith("vxlan"):
        post_decap = server.nic.steering.table("post-decap")
        post_decap.add_rule(MatchSpec(is_fragment=True), frag_actions)
        post_decap.default_actions = [ForwardToRss(group)]
        table.add_rule(MatchSpec(ip_proto=17, dst_port=VXLAN_PORT),
                       [DecapVxlan(), GotoTable("post-decap")], priority=20)
    table.add_rule(MatchSpec(is_fragment=True), frag_actions, priority=10)
    table.default_actions = [ForwardToRss(group)]

    # The client: one tx queue, 60 flows round-robin.
    client_qp = client.driver.create_eth_qp(vport=1, use_mmio_wqe=True)
    client_qp.post_rx_buffers(64)
    flows = make_flows(NUM_FLOWS, proto=PROTO_TCP, dst_ip=SERVER_IP,
                       seed=11)
    from ..net import MacAddress
    for flow in flows:
        flow.src_mac = MacAddress(CLIENT_MAC)
        flow.dst_mac = MacAddress(SERVER_MAC)
    return SimpleNamespace(sim=sim, client=client, server=server,
                           client_qp=client_qp, flows=flows, meter=meter,
                           receivers=receivers, accel=accel, config=config,
                           calibration=cal)


def _sender(sim, setup, packets_per_flow_round: int, rounds: int):
    """Client process: 1500 B TCP packets, fragmented/encapsulated in
    software as the configuration demands."""
    cal = setup.calibration
    config = setup.config
    qp = setup.client_qp
    for _round in range(rounds):
        for flow in setup.flows:
            packet = flow.make_sized_packet(FULL_MTU + 14)
            if config == "nofrag":
                frames = [packet]
            else:
                frames = fragment_packet(packet, SMALL_MTU)
            cost = 0.0
            if config != "nofrag":
                cost += cal.client_frag_seconds * len(frames)
            if config.startswith("vxlan"):
                frames = [
                    vxlan_encapsulate(f, VNI, CLIENT_MAC, SERVER_MAC,
                                      CLIENT_IP, SERVER_IP)
                    for f in frames
                ]
                cost += cal.client_encap_seconds * len(frames)
            if cost:
                yield sim.timeout(cost)
            for frame in frames:
                yield from qp.wait_for_tx_space()
                qp.send(frame.to_bytes())
            # pace lightly so 60 flows interleave like parallel iperfs
            yield sim.timeout(1e-9)


def run(config: str, rounds: int = 40,
        cal: Optional[DefragCalibration] = None,
        deadline: float = 0.05) -> Dict:
    """Run one configuration; returns the measured goodput."""
    setup = build(config, cal)
    sim = setup.sim
    sim.spawn(_sender(sim, setup, 1, rounds))
    sim.run(until=deadline)
    queue_counts = [r.stats_packets for r in setup.receivers]
    return {
        "config": config,
        "goodput_gbps": setup.meter.gbps(),
        "datagrams": setup.meter.packets,
        "active_cores": sum(1 for c in queue_counts if c > 0),
        "queue_counts": queue_counts,
        "accel_reassembled": (setup.accel.stats_reassembled
                              if setup.accel else 0),
    }


CONFIGS = ("nofrag", "sw-defrag", "hw-defrag", "vxlan-sw", "vxlan-hw")


def experiment_points(rounds: int = 30,
                      configs=CONFIGS) -> List[SweepPoint]:
    """The §8.2.2 comparison as one sweep point per configuration."""
    return [
        SweepPoint("defrag", "repro.experiments.defrag:run",
                   {"config": config, "rounds": rounds})
        for config in configs
    ]


def experiment(rounds: int = 30, jobs: int = 1,
               cache: Optional[SweepCache] = None) -> List[Dict]:
    """The full §8.2.2 comparison."""
    return run_sweep(experiment_points(rounds),
                     jobs=jobs, cache=cache).rows
