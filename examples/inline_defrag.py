#!/usr/bin/env python3
"""Inline IP defragmentation in the middle of the NIC pipeline (§8.2.2).

Shows the "all-or-nothing offloads" problem and FLD's fix: fragmented
packets break RSS (all traffic lands on one core); steering them through
the FLD defragmentation accelerator and *resuming* the pipeline restores
RSS — NIC offloads run both before and after the accelerator.

Run:  python examples/inline_defrag.py
"""

from repro.experiments.defrag import run as run_config


def main():
    print("=== Inline IP defragmentation (60 TCP flows, 8 rx cores) ===\n")
    results = {}
    for config, note in (
        ("nofrag", "no fragmentation: RSS spreads flows over the cores"),
        ("sw-defrag", "1450 B-MTU hop: RSS breaks, ONE core defragments"),
        ("hw-defrag", "FLD defrag accelerator mid-pipeline: RSS restored"),
        ("vxlan-sw", "pre-fragmented VXLAN, software defrag"),
        ("vxlan-hw", "NIC decap offload -> FLD defrag -> RSS"),
    ):
        result = run_config(config)
        results[config] = result
        print(f"{config:<10s} {result['goodput_gbps']:6.2f} Gbps on "
              f"{result['active_cores']} core(s)   # {note}")

    speedup = (results["hw-defrag"]["goodput_gbps"]
               / results["sw-defrag"]["goodput_gbps"])
    vxlan_speedup = (results["vxlan-hw"]["goodput_gbps"]
                     / results["vxlan-sw"]["goodput_gbps"])
    print(f"\nhardware defrag speedup        : {speedup:.1f}x "
          "(paper: 7x)")
    print(f"with VXLAN decap composition   : {vxlan_speedup:.1f}x "
          "(paper: 5.25x, sender-bound)")


if __name__ == "__main__":
    main()
