#!/usr/bin/env python3
"""Quickstart: an accelerator on the network through FlexDriver.

Builds the paper's remote setup in a few lines — a client node and an
FLD-equipped server over a simulated 25 GbE wire — attaches an echo
accelerator behind FLD, and bounces packets off it, printing what the
hardware did along the way.

Run:  python examples/quickstart.py
"""

from repro.accelerators import EchoAccelerator
from repro.host import LoadGenerator
from repro.net import Flow
from repro.sim import Simulator
from repro.sw import FldRuntime
from repro.testbed import make_remote_pair

CLIENT_MAC = "02:00:00:00:00:01"
FLD_MAC = "02:00:00:00:00:99"


def main():
    sim = Simulator()

    # Two nodes, back to back: each has a PCIe fabric, host memory, a
    # ConnectX-like NIC and a software driver.
    client, server = make_remote_pair(sim)
    client.add_vport_for_mac(1, CLIENT_MAC)   # client host traffic
    server.add_vport_for_mac(2, FLD_MAC)      # the accelerator's vPort

    # Drop an FLD module onto the server and plumb one receive path
    # (MPRQ into FLD's on-die SRAM, descriptor ring in host memory) and
    # one transmit queue (virtual ring inside the FLD BAR).
    runtime = FldRuntime(server)
    runtime.create_rx_queue(vport=2)
    txq = runtime.create_eth_tx_queue(vport=2)

    # The accelerator sees only two AXI-Stream-like buses and credits.
    accel = EchoAccelerator(sim, runtime.fld, units=2, tx_queue=txq)

    # A testpmd-style load generator on the client host.
    qp = client.driver.create_eth_qp(vport=1, use_mmio_wqe=True)
    qp.post_rx_buffers(256)
    flow = Flow(CLIENT_MAC, FLD_MAC, "10.0.0.1", "10.0.0.2", 7000, 7001)
    loadgen = LoadGenerator(sim, qp, flow)

    def drive(sim):
        yield from loadgen.run_closed_loop(frame_size=512, count=100)
        yield from loadgen.drain()

    sim.spawn(drive(sim))
    sim.run(until=1.0)

    fld = runtime.fld
    print("=== FlexDriver quickstart ===")
    print(f"packets echoed through the accelerator : {accel.stats_processed}")
    print(f"round trips completed                  : {loadgen.stats_received}")
    print(f"median round-trip latency              : "
          f"{loadgen.latency.median * 1e6:.2f} us")
    print(f"NIC CQE writes into the FLD BAR        : {fld.stats_cqe_writes}")
    print(f"WQEs generated on-the-fly for NIC reads: {fld.tx.stats_wqe_reads}"
          f" (0 = WQE-by-MMIO covered everything)")
    memory = fld.on_die_memory()
    print(f"FLD on-die memory                      : "
          f"{memory['total'] / 1024:.1f} KiB "
          f"(rx ring in host memory: {memory['rx_ring']} B)")
    assert loadgen.stats_received == 100
    print("OK")


if __name__ == "__main__":
    main()
