#!/usr/bin/env python3
"""A virtualized IoT authentication offload (§8.2.3).

One accelerator, several tenants: the NIC classifies each tenant's flows
and tags them with a context ID; the accelerator keeps only a linear
table of HMAC keys indexed by that tag; the NIC's traffic shaper
enforces per-tenant bandwidth so one tenant cannot starve another.
Forged JWTs are dropped in hardware before they cost any host CPU.

Run:  python examples/iot_multitenant.py
"""

from repro.experiments.iot import drop_invalid_tokens, isolation


def main():
    print("=== IoT token-authentication offload ===\n")

    print("-- DDoS filtering: alternating valid/forged HMAC tokens --")
    result = drop_invalid_tokens(count=200)
    print(f"valid tokens accepted    : {result['valid']}")
    print(f"forged tokens dropped    : {result['invalid']}")
    print(f"packets reaching the host: {result['delivered_to_host']} "
          "(only the valid ones)\n")

    print("-- Performance isolation: tenants at 8 & 16 Gbps, "
          "accelerator capped at 12 Gbps --")
    unshaped = isolation(shaped=False)
    print(f"without NIC shaping : tenant A {unshaped['tenant_a_gbps']:.2f} "
          f"Gbps, tenant B {unshaped['tenant_b_gbps']:.2f} Gbps  "
          "(proportional to link share; paper: 4.15 / 8.35)")
    shaped = isolation(shaped=True)
    print(f"with 6 Gbps limits  : tenant A {shaped['tenant_a_gbps']:.2f} "
          f"Gbps, tenant B {shaped['tenant_b_gbps']:.2f} Gbps  "
          "(each gets its allocation; paper: 6 / 6)")
    print(f"packets policed by the NIC shaper: {shaped['meter_drops']}")


if __name__ == "__main__":
    main()
