#!/usr/bin/env python3
"""One-sided RDMA through the NIC's hardware transport.

Demonstrates the transport offload class that FLD (unlike BITW designs)
can reach: a client registers nothing, the server registers a memory
region, and the client's NIC writes bulk data straight into it — no
server CPU, no receive descriptors, no receive completions — then posts
a tiny SEND as a doorbell message.

Run:  python examples/rdma_remote_memory.py
"""

from repro.sim import Simulator
from repro.testbed import make_remote_pair

CLIENT_MAC = "02:00:00:00:00:01"
SERVER_MAC = "02:00:00:00:00:02"


def main():
    sim = Simulator()
    client, server = make_remote_pair(sim)
    client.add_vport_for_mac(1, CLIENT_MAC)
    server.add_vport_for_mac(1, SERVER_MAC)

    cep = client.driver.create_rc_endpoint(1, CLIENT_MAC, "10.0.0.1",
                                           buffer_size=8192)
    sep = server.driver.create_rc_endpoint(1, SERVER_MAC, "10.0.0.2",
                                           buffer_size=8192)
    cep.post_rx_buffers(64)
    sep.post_rx_buffers(64)
    cep.connect(SERVER_MAC, "10.0.0.2", sep.qpn)
    sep.connect(CLIENT_MAC, "10.0.0.1", cep.qpn)

    # Server-side: register 8 KiB as an RDMA WRITE target.
    addr, rkey, read = sep.register_mr(8192)
    bulk = bytes(range(256)) * 24  # 6 KiB

    log = {}

    def server_proc(sim):
        message, _cqe = yield sep.messages.get()
        # The notification SEND arrives after the WRITE (RC ordering):
        # the data is already in place, untouched by any server code.
        log["notified"] = message
        log["data"] = read(len(bulk))

    def client_proc(sim):
        rq_before = sep.rq.available
        cep.post_write(bulk, addr, rkey, signaled=False)
        yield cep.post_send(b"wrote 6 KiB at offset 0")
        log["rq_consumed"] = rq_before - sep.rq.available

    sim.spawn(server_proc(sim))
    sim.spawn(client_proc(sim))
    sim.run(until=0.05)

    print("=== One-sided RDMA WRITE over the simulated NIC transport ===")
    print(f"notification message       : {log['notified'].decode()}")
    print(f"bulk data intact           : {log['data'] == bulk}")
    print(f"server rx descriptors used : {log['rq_consumed']} "
          "(only the notification SEND; the 6 KiB WRITE used none)")
    print(f"segments on the wire       : {sep.qp.stats_writes_received} "
          "writes + 1 send")
    assert log["data"] == bulk
    print("OK")


if __name__ == "__main__":
    main()
