#!/usr/bin/env python3
"""A disaggregated LTE cipher accelerator over FLD-R (§7, §8.2.1).

The server exposes 8 real ZUC engine units behind FlexDriver's RDMA
interface; the client talks to it through a DPDK-cryptodev-style API —
the same API a local hardware cipher would use, which is the paper's
portability point.  Ciphertext is verified against a direct 128-EEA3
computation, and the throughput is compared against the single-core
software driver.

Run:  python examples/disaggregated_zuc.py
"""

from repro.accelerators.zuc import eea3_encrypt
from repro.experiments.setups import Calibration, zuc_service
from repro.experiments.zuc import SW_CYCLES_PER_BYTE, SW_CYCLES_PER_OP
from repro.host import CpuComputeCost, CpuCore
from repro.sim import Simulator
from repro.sw import CryptoOp, FldRZucCryptodev, SwZucCryptodev


def run_device(make_device, label: str, size: int = 512, count: int = 200):
    """test-crypto-perf in miniature: a closed loop of cipher ops."""
    sim = Simulator()
    dev, verify_key = make_device(sim)
    payload = bytes(range(256)) * (size // 256 or 1)
    payload = payload[:size]
    state = {"done": 0, "first": None, "last": None, "checked": False}

    def runner(sim):
        window = 32
        submitted = 0
        for _ in range(min(window, count)):
            dev.submit(CryptoOp(CryptoOp.CIPHER, verify_key, payload,
                                count=7, bearer=3))
            submitted += 1
        while state["done"] < count:
            op = yield dev.completions.get()
            if not state["checked"]:
                expected = eea3_encrypt(verify_key, 7, 3, 0, payload)
                assert op.result == expected, "ciphertext mismatch!"
                state["checked"] = True
            state["done"] += 1
            state["first"] = state["first"] or sim.now
            state["last"] = sim.now
            if submitted < count:
                dev.submit(CryptoOp(CryptoOp.CIPHER, verify_key, payload,
                                    count=7, bearer=3))
                submitted += 1

    sim.spawn(runner(sim))
    sim.run(until=5.0)
    duration = state["last"] - state["first"]
    gbps = (state["done"] - 1) * size * 8 / duration / 1e9
    print(f"{label:<28s} {gbps:6.2f} Gbps "
          f"({state['done']} x {size} B requests, ciphertext verified)")
    return gbps


def main():
    print("=== Disaggregated ZUC cipher (128-EEA3) ===")
    key = bytes(range(16))

    def make_fld(sim):
        setup = zuc_service(sim, Calibration())
        return FldRZucCryptodev(sim, setup.connection), key

    def make_cpu(sim):
        core = CpuCore(sim, os_jitter_probability=0.0)
        compute = CpuComputeCost(core, SW_CYCLES_PER_BYTE,
                                 SW_CYCLES_PER_OP)
        return SwZucCryptodev(sim, compute), key

    remote = run_device(make_fld, "remote FLD accelerator")
    local = run_device(make_cpu, "local software (1 core)")
    print(f"{'speedup':<28s} {remote / local:6.2f}x  (paper: ~4x at 512 B)")


if __name__ == "__main__":
    main()
