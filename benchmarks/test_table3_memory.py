"""Table 3: memory for NIC-driver communication, software vs FLD.

The paper's headline memory claim: the same provisioning that costs a
conventional driver 85.3 MiB fits FLD in 832.7 KiB — a 105x reduction —
with the per-structure breakdown (2080x on rings, 28x on tx buffers...).
Also cross-checks the analytical model against a *live* FlexDriver
instance's on-die accounting.
"""

import pytest

from repro.models.memory import KIB, MIB
from repro.sweep import SweepPoint

from .conftest import print_table, run_once, run_points


def test_table3(benchmark):
    point = SweepPoint("table3", "repro.models.memory:table3")
    result = run_once(benchmark, lambda: run_points([point])[0])
    software, fld, ratios = (result["software"], result["fld"],
                             result["ratios"])
    rows = []
    for key in ("tx_rings", "tx_buffers", "rx_buffers",
                "completion_queues", "rx_ring", "producer_indices",
                "total"):
        rows.append({
            "structure": key,
            "software": _human(software[key]),
            "fld": _human(fld[key]),
            "shrink": f"x{ratios[key]:.1f}" if key in ratios else "-",
        })
    print_table("Table 3: memory analysis, software vs FLD", rows)

    assert software["total"] / MIB == pytest.approx(85.3, abs=0.2)
    assert fld["total"] / KIB == pytest.approx(832.7, abs=2)
    assert ratios["total"] == pytest.approx(105, abs=1)
    assert ratios["tx_rings"] == pytest.approx(2080, rel=0.01)
    assert ratios["tx_buffers"] == pytest.approx(28.2, abs=0.2)
    assert ratios["rx_buffers"] == pytest.approx(29.8, abs=0.2)
    assert ratios["completion_queues"] == pytest.approx(4.27, abs=0.02)


def test_live_fld_instance_matches_prototype_scale(benchmark):
    """A live FlexDriver (the §6 prototype config: 2 queues, 256 KiB
    buffers, 4096 descriptors) reports sub-MiB on-die memory."""
    from repro.core import FlexDriver
    from repro.pcie import PcieFabric
    from repro.sim import Simulator

    def build():
        sim = Simulator()
        fabric = PcieFabric(sim)
        fld = FlexDriver(sim, fabric)
        fld.bind_tx_queue(0, 1, 1024, 0, 0, cq_index=0)
        fld.bind_tx_queue(1, 2, 1024, 0, 0, cq_index=1)
        fld.bind_rx_queue(0, FlexDriver.RX_CQ_BASE, 2, 64, 2048, 0)
        return fld.on_die_memory()

    memory = run_once(benchmark, build)
    rows = [{"component": k, "bytes": v, "kib": v / KIB}
            for k, v in memory.items()]
    print_table("Live FLD prototype on-die memory", rows)
    assert memory["total"] < 1 * MIB
    assert memory["rx_ring"] == 0


def _human(nbytes: int) -> str:
    if nbytes >= MIB:
        return f"{nbytes / MIB:.1f} MiB"
    if nbytes >= KIB:
        return f"{nbytes / KIB:.1f} KiB"
    return f"{nbytes} B"
