"""Table 5: hardware resource utilization per module + the §7 NICA
comparison (FLD + IoT auth vs NICA's BITW reimplementation)."""

import pytest

from repro.models import area

from .conftest import print_table, run_once


def test_table5(benchmark):
    rows = run_once(benchmark, lambda: [
        {"module": m.name, "clk MHz": m.clock_mhz, "LUT": m.utilization.lut,
         "FF": m.utilization.ff, "BRAM": m.utilization.bram,
         "URAM": m.utilization.uram, "LOC": m.loc or "-"}
        for m in area.TABLE5
    ])
    print_table("Table 5: prototype resource utilization", rows)

    fld = area.module("FLD")
    assert fld.utilization.lut == 50_000
    assert fld.utilization.uram == 44
    assert fld.clock_mhz == 250
    # FLD + PCIe core is the Table 1 footprint.
    total = area.fld_total_utilization()
    assert total.lut == 62_000
    assert total.ff == 89_000


def test_nica_comparison(benchmark):
    """§7: NICA needs ~36% more LUTs, ~40% more FFs, ~63% more BRAMs
    than FLD + the IoT offload, while being 5.7x slower."""
    comparison = run_once(benchmark, area.nica_comparison)
    rows = [{"metric": k, "value": f"{v:+.0%}" if "overhead" in k else v}
            for k, v in comparison.items()]
    print_table("NICA vs FLD + IoT auth (§7)", rows)

    # Direction and rough magnitude; exact deltas depend on whether the
    # PCIe core is attributed to FLD (documented in EXPERIMENTS.md).
    assert 0.2 < comparison["lut_overhead"] < 0.5
    assert 0.2 < comparison["ff_overhead"] < 0.55
    assert 0.4 < comparison["bram_overhead"] < 0.8
    assert comparison["nica_slowdown"] == pytest.approx(5.7)
