"""Table 1: FPGA-based networking architectures — area vs features.

Regenerates the paper's comparison of CPU-mediated, accelerator-hosted,
BITW and FlexDriver designs: resource utilization alongside the NIC
feature set each can use.
"""

from repro.models import area

from .conftest import print_table, run_once


def _build_rows():
    rows = []
    for arch in area.TABLE1:
        util = arch.utilization
        rows.append({
            "category": arch.category,
            "solution": arch.solution,
            "gbps": "/".join(map(str, arch.gbps)),
            "LUT": util.lut,
            "FF": util.ff,
            "BRAM": util.bram,
            "URAM": util.uram,
            "tunneling": arch.tunneling,
            "hw transport": arch.hardware_transport,
        })
    return rows


def test_table1(benchmark):
    rows = run_once(benchmark, _build_rows)
    print_table("Table 1: accelerator networking architectures", rows)

    by_name = {r["solution"]: r for r in rows}
    fld = by_name["FLD"]

    # FLD is the only design with full tunneling + hardware transport.
    assert fld["tunneling"] == "yes" and fld["hw transport"] == "yes"
    for name, row in by_name.items():
        if name != "FLD":
            assert not (row["tunneling"] == "yes"
                        and row["hw transport"] == "yes")

    # ...at an area comparable to or below the full-NIC designs.
    assert fld["LUT"] <= by_name["Corundum"]["LUT"] * 1.05
    assert fld["LUT"] < by_name["StRoM"]["LUT"]
    assert fld["LUT"] < by_name["NICA"]["LUT"]
    assert fld["FF"] < by_name["NICA"]["FF"]
    assert fld["BRAM"] < min(r["BRAM"] for n, r in by_name.items()
                             if n != "FLD")
