"""Figure 4: driver memory requirements with/without FLD optimizations.

Sweeps line rate (25 -> 400 Gbps) and transmit-queue count (64 -> 2048)
and compares the conventional driver against FLD against the XCKU15P's
10.05 MiB of on-chip memory.  The paper's claim: FLD stays on-chip even
at 400 Gbps with 2048 queues; software blows past it everywhere.
"""

from repro.models.memory import MIB, XCKU15P_ON_CHIP_BYTES
from repro.sweep import SweepPoint

from .conftest import print_table, run_once, run_points


def test_fig4_bandwidth_sweep(benchmark):
    point = SweepPoint("fig4",
                       "repro.models.memory:figure4_bandwidth_sweep")
    rows = run_once(benchmark, lambda: run_points([point])[0])
    display = [
        {"bandwidth_gbps": r["bandwidth_gbps"],
         "software_mib": r["software_bytes"] / MIB,
         "fld_mib": r["fld_bytes"] / MIB,
         "fits_on_chip": "fld" if r["fld_bytes"] < XCKU15P_ON_CHIP_BYTES
         else "neither"}
        for r in rows
    ]
    print_table("Fig. 4 (left): memory vs line rate, Nq=512", display)

    for row in rows:
        assert row["software_bytes"] > XCKU15P_ON_CHIP_BYTES
        assert row["fld_bytes"] < XCKU15P_ON_CHIP_BYTES
        assert row["software_bytes"] / row["fld_bytes"] > 50


def test_fig4_queue_sweep(benchmark):
    point = SweepPoint("fig4", "repro.models.memory:figure4_queue_sweep")
    rows = run_once(benchmark, lambda: run_points([point])[0])
    display = [
        {"tx_queues": r["num_tx_queues"],
         "software_mib": r["software_bytes"] / MIB,
         "fld_mib": r["fld_bytes"] / MIB}
        for r in rows
    ]
    print_table("Fig. 4 (right): memory vs queue count, B=100G", display)

    software = [r["software_bytes"] for r in rows]
    fld = [r["fld_bytes"] for r in rows]
    # Software grows steeply with queues (rings are per-queue)...
    assert software[-1] / software[0] > 8
    # ...FLD is essentially flat (shared pool + translation).
    assert fld[-1] / fld[0] < 1.05
    # And the paper's extreme point holds: 400G x 2048 queues on-chip.
    from repro.models.memory import DriverParameters, fld_memory
    extreme = fld_memory(DriverParameters(bandwidth_bps=400e9,
                                          num_tx_queues=2048))
    assert extreme["total"] < XCKU15P_ON_CHIP_BYTES
