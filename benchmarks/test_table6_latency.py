"""Table 6: network echo round-trip for 64 B packets.

Paper (us):             mean   median  p99    p99.9
    FLD-E               2.78   2.6     3.4    4.34
    CPU                 2.36   2.34    2.58   11.18

Reproduction targets (shape): FLD-E's mean is modestly higher than the
CPU's (slower FPGA clock), but its 99.9th percentile is >2x better
because no OS ever interferes with the FLD data path.  Absolute values
depend on the calibrated PCIe/wire latencies (EXPERIMENTS.md).
"""

from repro.experiments.echo import table6_points

from .conftest import print_table, run_once, run_points


def test_table6(benchmark):
    def run():
        return run_points(table6_points(count=2500))

    rows = run_once(benchmark, run)
    display = [
        {"mode": r["mode"], "mean_us": r["mean_us"],
         "median_us": r["median_us"], "p99_us": r["p99_us"],
         "p99.9_us": r["p999_us"]}
        for r in rows
    ]
    print_table("Table 6: 64 B echo round-trip", display)

    flde, cpu = rows[0], rows[1]
    assert flde["count"] == cpu["count"] == 2500

    # Mean: FLD-E slightly slower (FPGA clock), within ~35%.
    assert flde["mean_us"] >= cpu["mean_us"]
    assert flde["mean_us"] <= cpu["mean_us"] * 1.35

    # Tail: FLD-E's p99.9 beats the CPU's by at least 1.5x (paper: 2.5x)
    # because the CPU suffers OS interference.
    assert cpu["p999_us"] >= flde["p999_us"] * 1.5

    # The CPU's own tail blows up relative to its p99; FLD-E's doesn't.
    assert cpu["p999_us"] > cpu["p99_us"] * 1.5
    assert flde["p999_us"] < flde["p99_us"] * 1.3

    # Magnitudes are single-digit microseconds, as in the paper.
    assert 1.0 < cpu["median_us"] < 10.0
    assert 1.0 < flde["median_us"] < 10.0
