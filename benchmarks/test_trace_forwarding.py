"""§8.1.1: forwarding the IMC-2010-like mixed-size datacenter trace.

Paper: FLD-E processes 12.7 Mpps vs 9.6 Mpps for testpmd on one CPU
core — "FLD can drive the NIC as efficiently as the CPU".  Shape
targets: FLD-E exceeds the single core; both are in the ~10 Mpps range;
the CPU lands near its calibrated per-packet budget.
"""

import pytest

from repro.experiments.echo import forwarding_points
from repro.net import ImcDatacenterSizes

from .conftest import print_table, run_once, run_points


def test_trace_distribution_shape(benchmark):
    dist = run_once(benchmark, ImcDatacenterSizes)
    sizes = dist.sizes(20000)
    small = sum(1 for s in sizes if s <= 256)
    large = sum(1 for s in sizes if s >= 1200)
    rows = [{
        "mean_size": sum(sizes) / len(sizes),
        "small_fraction": small / len(sizes),
        "large_fraction": large / len(sizes),
    }]
    print_table("IMC-2010-like size mixture", rows)
    # Bimodal: dominated by small packets with a visible large mode.
    assert rows[0]["small_fraction"] > 0.6
    assert rows[0]["large_fraction"] > 0.04
    assert 180 < rows[0]["mean_size"] < 300


def test_trace_forwarding(benchmark):
    def run():
        return run_points(forwarding_points(count=6000))

    rows = run_once(benchmark, run)
    print_table("§8.1.1: mixed-size trace forwarding", rows,
                columns=["mode", "mpps", "gbps", "received", "sent"])

    flde, cpu = rows[0], rows[1]
    # FLD-E exceeds the single-core CPU driver (paper: 12.7 vs 9.6).
    assert flde["mpps"] > cpu["mpps"] * 1.05
    # Both in the right ballpark.
    assert 8.0 < cpu["mpps"] < 11.0
    assert 9.5 < flde["mpps"] < 14.0
