#!/usr/bin/env python
"""Standalone Fig. 7b wall-clock benchmark (no pytest needed).

Runs the echo-throughput grid — every (mode, size) point of Fig. 7b —
directly, times it with ``time.perf_counter``, and writes a JSON
summary with simulated packet throughput, wall-clock seconds and the
simulated-time/wall-clock ratio.

The default output path is ``BENCH_fig7b_echo.json`` **at the repo
root** (anchored to this script's location, not the current working
directory), because that file is a committed, per-PR tracked artifact:
``benchmarks/check_bench_regression.py`` compares fresh runs against
it in CI and fails on large throughput regressions.  Pass ``-o`` to
write elsewhere; a relative ``-o`` path is resolved against the CWD as
given.

Usage::

    python benchmarks/bench_fig7b.py [--count N] [--sizes 64 256 ...]
        [--modes flde-remote ...] [-o /path/to/out.json]
"""

import argparse
import json
import os
import sys
import time

REPO_ROOT = os.path.normpath(
    os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro import batching  # noqa: E402
from repro.experiments.echo import echo_throughput  # noqa: E402

#: Each echo run simulates up to this horizon (experiments/echo.py).
SIM_HORIZON_SECONDS = 2.0

DEFAULT_SIZES = [64, 128, 256, 512, 1024, 1500]
DEFAULT_MODES = ["flde-remote", "cpu-remote", "flde-local"]
DEFAULT_OUTPUT = os.path.join(REPO_ROOT, "BENCH_fig7b_echo.json")


def run_grid(modes, sizes, count):
    rows = []
    for mode in modes:
        for size in sizes:
            started = time.perf_counter()
            result = echo_throughput(mode, size, count=count)
            result["wall_seconds"] = time.perf_counter() - started
            rows.append(result)
    return rows


def profile_pass(count):
    """One profiled flde-remote echo run: the event-cost fingerprint.

    Schema 3 addition.  ``events_per_packet`` is the datapath's
    event-efficiency number (deterministic — heap events, not wall
    clock), tracked alongside throughput so the BENCH trajectory says
    whether a speedup came from cheaper events or fewer of them;
    ``stage_shares`` says which pipeline stage owns the events.
    """
    import random

    from repro.telemetry.runner import run_profile

    random.seed(0)
    summary = run_profile("echo", count=count)
    profile = summary["profile"]
    return {
        "experiment": "echo",
        "count": count,
        "delivered": profile["delivered"],
        "total_events": profile["total_events"],
        "events_per_packet": profile["events_per_packet"],
        "stage_events": {stage: data["events"]
                         for stage, data in profile["stages"].items()},
        "stage_shares": {stage: round(data["share"], 6)
                         for stage, data in profile["stages"].items()},
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--count", type=int, default=900,
                        help="frames per grid point (default: 900)")
    parser.add_argument("--sizes", type=int, nargs="+",
                        default=DEFAULT_SIZES, metavar="BYTES")
    parser.add_argument("--modes", nargs="+", default=DEFAULT_MODES,
                        metavar="MODE")
    parser.add_argument("-o", "--output", default=DEFAULT_OUTPUT,
                        help="JSON output path (default: the tracked "
                             "BENCH_fig7b_echo.json at the repo root, "
                             "independent of the CWD)")
    args = parser.parse_args(argv)

    rows = run_grid(args.modes, args.sizes, args.count)
    wall = sum(row["wall_seconds"] for row in rows)
    packets = sum(row["sent"] + row["received"] for row in rows)
    sim_seconds = SIM_HORIZON_SECONDS * len(rows)
    profile = profile_pass(args.count)
    report = {
        "bench": "fig7b_echo",
        "schema": 3,
        "batch_enabled": batching.batch_enabled(),
        "count": args.count,
        "rows": rows,
        "points": len(rows),
        "packets": packets,
        "wall_seconds": wall,
        "sim_seconds": sim_seconds,
        "sim_time_ratio": sim_seconds / wall if wall else None,
        "pkts_per_second": packets / wall if wall else None,
        "profile": profile,
        "events_per_packet": profile["events_per_packet"],
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
    print(f"{len(rows)} points, {packets} packets in {wall:.2f}s wall "
          f"({report['pkts_per_second']:.0f} pkts/s, sim/wall "
          f"{report['sim_time_ratio']:.1f}x, "
          f"{profile['events_per_packet']:.2f} events/pkt) "
          f"-> {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
