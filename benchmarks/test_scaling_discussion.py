"""§9 Discussion: scaling FLD past one instance's ceiling.

"We believe the design can scale either by increasing the pipeline
width or instantiating multiple FLD 'cores' within the accelerator,
combined with NIC RSS offloads to balance the load on these cores."

This bench builds it on a 100 GbE-class testbed: N independent FLD
instances (own BAR window, own PCIe x8 attachment, own echo engine)
behind one NIC RSS group.
"""

import pytest

from repro.experiments.scaling import core_sweep_points

from .conftest import print_table, run_once, run_points


def test_fld_core_scaling(benchmark):
    def run():
        return run_points(core_sweep_points(core_counts=(1, 2, 4),
                                            count=2000))

    rows = run_once(benchmark, run)
    display = [
        {"fld_cores": r["cores"], "gbps": r["gbps"],
         "received": f"{r['received']}/{r['sent']}",
         "active_cores": r["active_cores"],
         "per_core": r["per_core_packets"]}
        for r in rows
    ]
    print_table("§9: FLD cores x RSS at 100 GbE (1500 B echo)", display)

    one, two, four = rows

    # One FLD core is PCIe-x8-bound: well under half the line rate, and
    # it sheds load (drops) under 100G of offered traffic.
    assert one["gbps"] < 50.0
    assert one["received"] < one["sent"]

    # Two cores roughly double the ceiling and carry everything.
    assert two["gbps"] > one["gbps"] * 1.7
    assert two["received"] == two["sent"]

    # Four cores: no further gain (the wire/testbed binds, not FLD),
    # and RSS spreads the load across all of them evenly.
    assert four["gbps"] == pytest.approx(two["gbps"], rel=0.1)
    counts = four["per_core_packets"]
    assert min(counts) > max(counts) * 0.8

