"""Figure 7c: FLD-R 1 KiB message latency vs offered load.

Shape targets from §8.1.2: single-digit-microsecond median latency at
low load; queueing delay grows latency as load rises; the system keeps
up with offered load well past half of line rate (the paper reports a
knee near 82% of the expected bandwidth).
"""

from repro.experiments.echo import fig7c_points

from .conftest import print_table, run_once, run_points


def test_fig7c(benchmark):
    rows = run_once(benchmark,
                    lambda: run_points(fig7c_points(per_point=500)))
    display = [
        {"offered_kmps": r["offered_mps"] / 1e3,
         "achieved_gbps": r["achieved_gbps"],
         "median_us": r["median_latency_us"],
         "p99_us": r["p99_latency_us"]}
        for r in rows
    ]
    print_table("Fig. 7c: FLD-R latency vs load (1 KiB messages)", display)

    # Low-load latency: single-digit microseconds (paper: 10.6 remote).
    assert 2.0 < rows[0]["median_latency_us"] < 20.0

    # Latency grows monotonically (within noise) as load rises.
    medians = [r["median_latency_us"] for r in rows]
    assert medians[-1] > medians[0]
    assert all(b >= a * 0.9 for a, b in zip(medians, medians[1:]))

    # The system keeps pace with offered load up to the highest point
    # (90% of nominal): achieved tracks offered within 5%.
    for row in rows:
        assert row["achieved_mps"] >= row["offered_mps"] * 0.95

    # The highest point exceeds 70% of the 25G line (paper knee: 82%).
    assert rows[-1]["achieved_gbps"] > 0.7 * 25.0 * 1024 / (1024 + 150)
