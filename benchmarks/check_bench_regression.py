#!/usr/bin/env python
"""Guard the tracked fig7b throughput trajectory.

``BENCH_fig7b_echo.json`` at the repo root is a committed per-PR
artifact: each PR that touches the datapath re-runs
``benchmarks/bench_fig7b.py`` and commits the refreshed numbers, so the
file's git history *is* the simulator's performance trajectory.

This script compares a freshly measured report against the committed
baseline and exits non-zero when aggregate ``pkts_per_second`` drops by
more than ``--threshold`` (default 25%), or — for schema-3 baselines —
when the profiled ``events_per_packet`` grows by more than
``--events-budget`` (default 10%; engine events are deterministic, so
the budget can be much tighter than the wall-clock floor) or past the
absolute ``--events-ceiling`` when one is given.  To keep the
comparison meaningful the fresh run reuses the baseline's grid (modes,
sizes, count) unless a pre-made fresh report is supplied, and the
bench is repeated ``--runs`` times (default 3) with the median
pkts/sec report compared, so one noisy wall-clock window cannot trip
the floor.

Usage::

    python benchmarks/check_bench_regression.py             # run + compare
    python benchmarks/check_bench_regression.py --fresh run.json
    python benchmarks/check_bench_regression.py --threshold 0.4

Exit status: 0 OK, 1 regression, 2 bad inputs.
"""

import argparse
import json
import os
import sys
import tempfile

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from bench_fig7b import DEFAULT_OUTPUT, main as bench_main  # noqa: E402


def load_report(path):
    try:
        with open(path, encoding="utf-8") as handle:
            report = json.load(handle)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read bench report {path}: {exc}",
              file=sys.stderr)
        raise SystemExit(2)
    if report.get("bench") != "fig7b_echo" or "pkts_per_second" not in report:
        print(f"error: {path} is not a fig7b_echo bench report",
              file=sys.stderr)
        raise SystemExit(2)
    return report


def grid_of(report):
    modes, sizes = [], []
    for row in report.get("rows", []):
        if row.get("mode") not in modes:
            modes.append(row.get("mode"))
        if row.get("size") not in sizes:
            sizes.append(row.get("size"))
    return modes, sizes


def measure_fresh(baseline, runs=3):
    """Re-run the bench on the baseline's grid; returns the median report.

    Wall clock on shared runners is noisy, so the bench is repeated
    ``runs`` times and the report with the median ``pkts_per_second``
    is compared — a single unlucky scheduling window can no longer trip
    the floor on its own.  The simulated rows are deterministic, so
    medianing by throughput discards only wall-clock noise.
    """
    modes, sizes = grid_of(baseline)
    argv = ["--count", str(baseline.get("count", 900))]
    if modes and all(m for m in modes):
        argv += ["--modes"] + modes
    if sizes and all(s for s in sizes):
        argv += ["--sizes"] + [str(s) for s in sizes]
    with tempfile.NamedTemporaryFile(mode="r", suffix=".json",
                                     delete=False) as handle:
        out = handle.name
    reports = []
    try:
        for index in range(max(1, runs)):
            bench_main(argv + ["-o", out])
            report = load_report(out)
            print(f"run {index + 1}/{runs}: "
                  f"{report['pkts_per_second']:.0f} pkts/sec")
            reports.append(report)
    finally:
        os.unlink(out)
    reports.sort(key=lambda r: r["pkts_per_second"])
    return reports[len(reports) // 2]


def check_events_budget(baseline, fresh, budget, absolute_ceiling=None):
    """Guard the deterministic events-per-packet trajectory.

    Returns 0/1 like an exit status.  Schema-2 baselines carry no
    profile pass; the guard is skipped (with a note) so the throughput
    check still runs against old artifacts.

    Two ceilings apply: a fractional *budget* over the committed
    baseline (tolerates noise-free drift when the baseline itself is
    refreshed), and an optional *absolute* ceiling — a hard line the
    metric must never re-cross once an optimization pushed it below
    (the +10% relative budget alone would let the number ratchet back
    up one "acceptable" regression at a time).
    """
    base_epp = baseline.get("events_per_packet")
    fresh_epp = fresh.get("events_per_packet")
    if base_epp is None:
        print("events/packet: baseline predates schema 3, budget "
              "check skipped")
        return 0
    if fresh_epp is None:
        print("error: fresh report missing events_per_packet",
              file=sys.stderr)
        return 2
    growth = fresh_epp / base_epp - 1.0
    ceiling = base_epp * (1.0 + budget)
    if absolute_ceiling is not None and absolute_ceiling < ceiling:
        ceiling = absolute_ceiling
    verdict = "OK" if fresh_epp <= ceiling else "REGRESSION"
    print(f"fig7b events/packet: baseline {base_epp:.2f}, fresh "
          f"{fresh_epp:.2f} ({growth:+.1%}); ceiling {ceiling:.2f} "
          f"[+{budget:.0%}"
          + (f", abs {absolute_ceiling:.2f}" if absolute_ceiling
             is not None else "")
          + f"] -> {verdict}")
    if verdict != "OK":
        print("profiled events per delivered packet grew past the "
              "budget; if the extra events are intended, re-run "
              "benchmarks/bench_fig7b.py and commit the refreshed "
              "BENCH_fig7b_echo.json", file=sys.stderr)
        return 1
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default=DEFAULT_OUTPUT,
                        help="committed artifact to compare against "
                             "(default: BENCH_fig7b_echo.json at the "
                             "repo root)")
    parser.add_argument("--fresh", default=None,
                        help="pre-measured report; omitted = re-run the "
                             "bench on the baseline's grid")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="max tolerated fractional pkts/sec drop "
                             "(default: 0.25)")
    parser.add_argument("--events-budget", type=float, default=0.10,
                        help="max tolerated fractional events-per-packet "
                             "growth (default: 0.10; ignored when the "
                             "baseline predates schema 3)")
    parser.add_argument("--events-ceiling", type=float, default=None,
                        help="absolute events-per-packet ceiling; "
                             "applied on top of --events-budget so the "
                             "metric can never ratchet back above a "
                             "line an optimization moved it under")
    parser.add_argument("--runs", type=int, default=3,
                        help="bench repetitions when measuring fresh; "
                             "the median pkts/sec report is compared "
                             "(default: 3)")
    args = parser.parse_args(argv)

    baseline = load_report(args.baseline)
    fresh = (load_report(args.fresh) if args.fresh
             else measure_fresh(baseline, args.runs))

    base_pps = baseline["pkts_per_second"]
    fresh_pps = fresh["pkts_per_second"]
    if not base_pps or not fresh_pps:
        print("error: report missing pkts_per_second", file=sys.stderr)
        return 2
    change = fresh_pps / base_pps - 1.0
    floor = base_pps * (1.0 - args.threshold)
    verdict = "OK" if fresh_pps >= floor else "REGRESSION"
    print(f"fig7b pkts/sec: baseline {base_pps:.0f}, fresh "
          f"{fresh_pps:.0f} ({change:+.1%}); floor {floor:.0f} "
          f"[-{args.threshold:.0%}] -> {verdict}")
    status = 0
    if verdict != "OK":
        print("fresh throughput fell below the regression floor; if the "
              "slowdown is intended, re-run benchmarks/bench_fig7b.py "
              "and commit the refreshed BENCH_fig7b_echo.json",
              file=sys.stderr)
        status = 1
    events_status = check_events_budget(baseline, fresh,
                                        args.events_budget,
                                        args.events_ceiling)
    return max(status, events_status)


if __name__ == "__main__":
    sys.exit(main())
