"""Ablation: cuckoo hash provisioning (§5.2's load-factor-1/2 choice).

The paper doubles the translation tables to guarantee insertion
convergence.  This ablation sweeps the load factor and measures kicks
and stalls under an FLD-like insert/remove churn — showing why the 2x
provisioning (and the 4-entry stash) is the right spend.
"""

from repro.core import CuckooFullError, CuckooHashTable

from .conftest import print_table, run_once

CAPACITY = 1024
ROUNDS = 30


def _churn(load_factor: float):
    table = CuckooHashTable(capacity=CAPACITY, load_factor=load_factor)
    target = int(CAPACITY * 0.95)
    stalls = 0
    inserted = 0
    # Sustained in-flight descriptor churn: fill to target, then
    # replace entries one by one, as FLD's tx pool does per packet.
    live = []
    for round_no in range(ROUNDS):
        for i in range(target):
            key = (round_no, i)
            try:
                table.insert(key, i)
                live.append(key)
                inserted += 1
            except CuckooFullError:
                stalls += 1
            if len(live) > target // 2:
                table.remove(live.pop(0))
        while live:
            table.remove(live.pop(0))
    return {
        "load_factor": load_factor,
        "inserted": inserted,
        "stalls": stalls + table.stats_stalls,
        "kicks": table.stats_kicks,
        "stash_peak": table.stats_stash_peak,
        "table_bytes": table.memory_bytes,
    }


def test_ablation_cuckoo_load_factor(benchmark):
    def run():
        return [_churn(lf) for lf in (0.5, 0.7, 0.85, 0.95, 1.0)]

    rows = run_once(benchmark, run)
    print_table("Ablation: cuckoo load factor under churn", rows)

    half = rows[0]
    full = rows[-1]
    # The paper's choice: at load factor 1/2 churn never stalls.
    assert half["load_factor"] == 0.5
    assert half["stalls"] == 0
    # Memory halves as the load factor doubles...
    assert full["table_bytes"] < half["table_bytes"] * 0.6
    # ...but displacement work rises monotonically with pressure.
    kicks = [r["kicks"] for r in rows]
    assert kicks[-1] >= kicks[0]
    assert sum(r["stalls"] for r in rows[2:]) >= 0  # tight tables may stall


def test_ablation_stash_usage(benchmark):
    """The 4-entry stash absorbs collision bursts at high pressure."""
    def run():
        table = CuckooHashTable(capacity=512, load_factor=0.98)
        placed = 0
        try:
            for i in range(512):
                table.insert(("burst", i), i)
                placed += 1
        except CuckooFullError:
            pass
        return {"placed": placed, "stash_peak": table.stats_stash_peak,
                "kicks": table.stats_kicks}

    result = run_once(benchmark, run)
    print_table("Ablation: stash under a fill burst", [result])
    assert result["placed"] > 256  # the stash keeps the fill going deep
