"""Figure 8b: ZUC latency vs bandwidth.

Shape targets from §8.2.1: the disaggregated accelerator is *not*
faster than local software at low load (network hops cost ~10 us), but
it sustains far higher bandwidth; the CPU saturates early and its
latency explodes with load while FLD's grows gently until its knee.
"""

from repro.experiments.zuc import fig8b_points

from .conftest import print_table, run_once, run_points


def test_fig8b(benchmark):
    rows = run_once(benchmark, lambda: run_points(
        fig8b_points(loads=[1, 4, 16, 64], count=250)))
    print_table("Fig. 8b: ZUC latency vs load (512 B requests)", rows,
                columns=["mode", "window", "gbps", "median_latency_us",
                         "p99_latency_us"])

    fld = {r["window"]: r for r in rows if r["mode"] == "fld"}
    cpu = {r["window"]: r for r in rows if r["mode"] == "cpu"}

    # At window=1 (low load) the remote accelerator is slower than the
    # local software — disaggregation costs a network round trip.
    assert fld[1]["median_latency_us"] > cpu[1]["median_latency_us"]

    # But at high load FLD delivers several times the bandwidth.
    assert fld[64]["gbps"] > cpu[64]["gbps"] * 2.5

    # CPU saturates: added load stops buying bandwidth and costs
    # latency steeply.
    assert cpu[64]["gbps"] < cpu[16]["gbps"] * 1.2
    assert cpu[64]["median_latency_us"] > cpu[1]["median_latency_us"] * 4

    # FLD's bandwidth keeps growing with window until its knee.
    assert fld[64]["gbps"] > fld[4]["gbps"]
