"""Ablation: the §6 PCIe optimizations, measured on the live stack.

Runs the FLD-E echo with WQE-by-MMIO on/off and compares throughput and
the NIC's descriptor-fetch traffic; plus selective completion
signalling's effect on the CQE write volume (host driver side).
"""

from repro.experiments.setups import flde_echo_remote
from repro.sim import Simulator

from .conftest import print_table, run_once


def _echo_with(cal, use_mmio: bool, size: int = 256, count: int = 800):
    sim = Simulator()
    setup = flde_echo_remote(sim, cal)
    # Rebind the FLD tx queue in the requested doorbell mode.
    setup.runtime.fld.tx.queue(0).use_mmio = use_mmio
    loadgen = setup.loadgen
    rate = 25e9 / ((size + 24) * 8)

    def run(sim):
        yield from loadgen.run_open_loop([size] * count, rate_pps=rate)
        yield from loadgen.drain()

    sim.spawn(run(sim))
    sim.run(until=2.0)
    return {
        "wqe_by_mmio": use_mmio,
        "gbps": loadgen.rx_meter.gbps(24),
        "nic_wqe_fetches": setup.runtime.fld.tx.stats_wqe_reads,
        "received": loadgen.stats_received,
    }


def test_ablation_wqe_by_mmio(benchmark, calibration):
    def run():
        return [_echo_with(calibration, True),
                _echo_with(calibration, False)]

    rows = run_once(benchmark, run)
    print_table("Ablation: WQE-by-MMIO on the FLD-E echo", rows)

    with_mmio, without = rows[0], rows[1]
    # MMIO mode never lets the NIC read the virtual ring...
    assert with_mmio["nic_wqe_fetches"] == 0
    # ...doorbell mode exercises the on-the-fly WQE generation.
    assert without["nic_wqe_fetches"] >= without["received"]
    # Both deliver the traffic; MMIO is never slower.
    assert with_mmio["received"] == without["received"] == 800
    assert with_mmio["gbps"] >= without["gbps"] * 0.98


def test_ablation_selective_signalling(benchmark):
    """Host-driver side: CQE writes drop ~16x with interval-16."""
    from repro.experiments.setups import cpu_echo_remote

    def run_one(interval):
        sim = Simulator()
        setup = cpu_echo_remote(sim, jitter=False)
        setup.loadgen.qp.signal_interval = interval
        setup.echo.qp.signal_interval = interval
        loadgen = setup.loadgen

        def run(sim):
            yield from loadgen.run_open_loop([512] * 600,
                                             rate_pps=25e9 / (536 * 8))
            yield from loadgen.drain()

        sim.spawn(run(sim))
        sim.run(until=2.0)
        return {
            "signal_interval": interval,
            "gbps": loadgen.rx_meter.gbps(24),
            "tx_cqes": (loadgen.qp.tx_cq.stats_cqes
                        + setup.echo.qp.tx_cq.stats_cqes),
        }

    rows = run_once(benchmark, lambda: [run_one(1), run_one(16)])
    print_table("Ablation: selective completion signalling", rows)
    every, sixteenth = rows[0], rows[1]
    assert every["tx_cqes"] > sixteenth["tx_cqes"] * 8
    assert sixteenth["gbps"] >= every["gbps"] * 0.98
