"""Ablation: MPRQ vs per-packet receive buffers (§5.2 "MPRQ").

Replays the IMC-like size mixture into (a) a multi-packet receive queue
and (b) classic per-packet max-size buffers, and compares the memory
needed to hold the same packets — MPRQ's fragmentation is bounded by
half a buffer, while per-packet buffers waste (max - actual) on every
packet.
"""

from repro.net import ImcDatacenterSizes
from repro.nic import CompletionQueue, MultiPacketReceiveQueue
from repro.sim import Simulator

from .conftest import print_table, run_once

PACKETS = 4000
MAX_PACKET = 2048  # per-packet buffer provisioning (a 1500 MTU rounds up)


def _mprq_usage(sizes):
    sim = Simulator()
    cq = CompletionQueue(sim, 1, 0, 1024)
    # ConnectX MPRQs take configurable stride sizes; small strides are
    # what bound fragmentation for mixed traffic.
    rq = MultiPacketReceiveQueue(sim, 1, 0, 1024, cq,
                                 strides_per_buffer=64, stride_size=256)
    rq.post(1024)
    used_strides = 0
    for size in sizes:
        placement = rq.place(size)
        assert placement is not None
        used_strides += placement["strides"]
    buffers_consumed = rq.ci + (1 if rq.stride_cursor else 0)
    return {
        "packets": len(sizes),
        "payload_bytes": sum(sizes),
        "memory_bytes": buffers_consumed * rq.buffer_size,
        "wasted_strides": rq.stats_wasted_strides,
    }


def _per_packet_usage(sizes):
    return {
        "packets": len(sizes),
        "payload_bytes": sum(sizes),
        "memory_bytes": len(sizes) * MAX_PACKET,
        "wasted_strides": 0,
    }


def test_ablation_mprq(benchmark):
    sizes = ImcDatacenterSizes(seed=3).sizes(PACKETS)

    def run():
        return {"mprq": _mprq_usage(sizes),
                "per-packet": _per_packet_usage(sizes)}

    results = run_once(benchmark, run)
    rows = []
    for name, r in results.items():
        rows.append({
            "scheme": name,
            "memory_mib": r["memory_bytes"] / (1 << 20),
            "efficiency": r["payload_bytes"] / r["memory_bytes"],
        })
    print_table("Ablation: MPRQ vs per-packet rx buffers", rows)

    mprq = results["mprq"]
    classic = results["per-packet"]
    # Small-packet-heavy traffic: MPRQ packs strides, per-packet wastes
    # a full MTU buffer per tiny packet.
    assert classic["memory_bytes"] > mprq["memory_bytes"] * 3
    # MPRQ utilization beats 25%; per-packet sits near mean/max ~ 11%.
    assert mprq["payload_bytes"] / mprq["memory_bytes"] > 0.1
    assert (classic["payload_bytes"] / classic["memory_bytes"]
            < mprq["payload_bytes"] / mprq["memory_bytes"])
