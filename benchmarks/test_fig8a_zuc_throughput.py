"""Figure 8a: disaggregated ZUC encryption throughput vs request size.

Paper: for requests >= 512 B the remote accelerator reaches 17.6 Gbps —
89% of the model's expectation and 4x the single-core CPU driver.
Real ciphertext flows end to end: requests are encrypted by the real
128-EEA3 on the FPGA-model side, over real RoCE framing.
"""

import pytest

from repro.experiments.zuc import fig8a_points
from repro.models.perf import zuc_model_gbps

from .conftest import print_table, run_once, run_points

SIZES = [64, 256, 512, 1024, 2048]


def test_fig8a(benchmark):
    def run():
        return run_points(fig8a_points(sizes=SIZES, count=250))

    rows = run_once(benchmark, run)
    print_table("Fig. 8a: ZUC encryption throughput (Gbps)", rows,
                columns=["mode", "size", "gbps", "model_gbps",
                         "median_latency_us"])

    fld = {r["size"]: r for r in rows if r["mode"] == "fld"}
    cpu = {r["size"]: r for r in rows if r["mode"] == "cpu"}

    # Paper's headline point: >= 512 B reaches ~17.6 Gbps, ~89% of the
    # model, ~4x the CPU.
    at_512 = fld[512]
    assert at_512["gbps"] == pytest.approx(17.6, abs=1.5)
    assert at_512["gbps"] / zuc_model_gbps(512) > 0.85
    ratio = at_512["gbps"] / cpu[512]["gbps"]
    assert 3.0 < ratio < 5.5

    # Throughput grows with request size for both, and FLD wins at
    # every size.
    for series in (fld, cpu):
        values = [series[s]["gbps"] for s in SIZES]
        assert values == sorted(values)
    for size in SIZES:
        assert fld[size]["gbps"] > cpu[size]["gbps"]
