"""§3 / Fig. 1: the three-way architecture trade-off, measured.

The paper frames FLD against three designs; two of them run live on the
same substrate here:

* **CPU-mediated** (Fig. 2a) — small accelerator area and full NIC
  features, but the host CPU relays every transaction: throughput
  collapses and one core burns at 100%.
* **FLD** (Fig. 2d) — full NIC features and no host-CPU involvement in
  the data path.

(Accelerator-hosted and BITW differ in *area* and *feature reach*, not
in anything a functional simulation can time — Table 1's published
utilization covers them.)
"""

from repro.experiments.cpu_mediated import sweep_points as mediated_points
from repro.experiments.echo import fig7b_points

from .conftest import print_table, run_once, run_points


def test_tradeoff_cpu_mediated_vs_fld(benchmark):
    sizes = (64, 256, 1024)

    def run():
        mediated = run_points(mediated_points(sizes=sizes, count=700))
        fld = run_points(fig7b_points(sizes=list(sizes), count=700,
                                      modes=["flde-remote"]))
        rows = []
        for m, f in zip(mediated, fld):
            rows.append({
                "architecture": "cpu-mediated", "size": m["size"],
                "gbps": m["gbps"], "mpps": m["mpps"],
                "host_cpu": f"{m['host_cpu_utilization']:.0%}",
            })
            rows.append({
                "architecture": "flexdriver", "size": f["size"],
                "gbps": f["gbps"], "mpps": f["mpps"],
                "host_cpu": "0% (control plane only)",
            })
        return rows

    rows = run_once(benchmark, run)
    print_table("§3 trade-off: CPU-mediated vs FLD (echo)", rows)

    by = {(r["architecture"], r["size"]): r for r in rows}
    for size in (64, 256, 1024):
        m = by[("cpu-mediated", size)]
        f = by[("flexdriver", size)]
        # FLD wins throughput at every size, massively at small packets.
        assert f["gbps"] > m["gbps"] * 3
        # The mediated relay core saturates.
        assert m["host_cpu"] == "100%"
    assert by[("cpu-mediated", 64)]["mpps"] < 1.0
    assert by[("flexdriver", 64)]["mpps"] > 10.0
