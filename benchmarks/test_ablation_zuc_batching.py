"""Ablation: the §8.2.1 future work, built — key storage + batching.

The paper: "This result can be further improved by adding on-FPGA key
storage and request batching, which we leave to future work."  This
bench compares the baseline protocol (64 B key-carrying header, one RDMA
message per op) against the extended one (keys cached in slots, 16 B
headers, 16-op batches) at small request sizes where per-message
overhead dominates.
"""

from repro.sim import Simulator
from repro.sw import BatchingZucCryptodev, CryptoOp, FldRZucCryptodev

from .conftest import print_table, run_once


def _service(sim, cal, batched: bool):
    from repro.accelerators.zuc import CachedKeyZucAccelerator
    from repro.experiments.setups import (
        CLIENT_IP, CLIENT_MAC, FLD_MAC, SERVER_IP)
    from repro.sw import FldRClient, FldRControlPlane, FldRuntime
    from repro.testbed import make_remote_pair

    client, server = make_remote_pair(sim, nic_config=cal.nic_config(),
                                      client_core=cal.client_core(sim))
    client.add_vport_for_mac(1, CLIENT_MAC)
    server.add_vport_for_mac(2, FLD_MAC)
    runtime = FldRuntime(server, fld_config=cal.fld_config())
    control = FldRControlPlane(runtime, vport=2, mac=FLD_MAC, ip=SERVER_IP)
    accel = CachedKeyZucAccelerator(sim, runtime.fld, units=8,
                                    queue_map=control.queue_map)
    fld_client = FldRClient(client.driver, vport=1, mac=CLIENT_MAC,
                            ip=CLIENT_IP, buffer_size=16 * 1024)
    connection = fld_client.connect(control)
    if batched:
        return BatchingZucCryptodev(sim, connection, batch_size=16,
                                    batch_delay=3e-6)
    return FldRZucCryptodev(sim, connection)


def _measure(cal, batched: bool, size: int, count: int = 900,
             window: int = 256):
    # Batching trades latency for throughput, so the closed loop needs a
    # deeper window (Little's law) to expose the gain.
    sim = Simulator()
    dev = _service(sim, cal, batched)
    key = bytes(range(16))
    state = {"done": 0, "first": None, "last": None}

    def runner(sim):
        submitted = 0
        for _ in range(min(window, count)):
            dev.submit(CryptoOp(CryptoOp.CIPHER, key, bytes(size)))
            submitted += 1
        while state["done"] < count:
            yield dev.completions.get()
            state["done"] += 1
            state["first"] = state["first"] or sim.now
            state["last"] = sim.now
            if submitted < count:
                dev.submit(CryptoOp(CryptoOp.CIPHER, key, bytes(size)))
                submitted += 1

    sim.spawn(runner(sim))
    sim.run(until=5.0)
    duration = (state["last"] or 1) - (state["first"] or 0)
    return {
        "driver": "batched+keycache" if batched else "baseline",
        "size": size,
        "gbps": (state["done"] - 1) * size * 8 / duration / 1e9,
        "mops": (state["done"] - 1) / duration / 1e6,
        "completed": state["done"],
    }


def test_ablation_zuc_batching(benchmark, calibration):
    def run():
        rows = []
        for size in (64, 128, 256, 512):
            rows.append(_measure(calibration, False, size))
            rows.append(_measure(calibration, True, size))
        return rows

    rows = run_once(benchmark, run)
    print_table("Ablation: ZUC key storage + batching (future work)",
                rows)

    by = {(r["driver"], r["size"]): r for r in rows}
    # Small requests: batching + compact headers win decisively.
    for size in (64, 128):
        baseline = by[("baseline", size)]["gbps"]
        batched = by[("batched+keycache", size)]["gbps"]
        assert batched > baseline * 1.3, (size, baseline, batched)
    # Large requests: per-message overhead matters less; batching never
    # hurts materially.
    assert (by[("batched+keycache", 512)]["gbps"]
            >= by[("baseline", 512)]["gbps"] * 0.9)
    # Everything completed in every configuration.
    for row in rows:
        assert row["completed"] == 900
