"""Ablation: TCP segmentation offload (one of §2.1's stateless offloads).

Compares transmitting a bulk TCP stream as host-segmented MSS frames
(one descriptor + one doorbell per wire packet) against LSO (one
descriptor per 16 KiB super-frame, the NIC segments) — the
per-descriptor PCIe traffic and host-side work TSO exists to remove.
"""

from repro.host import CpuCore
from repro.net import Flow, PROTO_TCP
from repro.sim import Simulator
from repro.testbed import make_remote_pair

from .conftest import print_table, run_once

CLIENT_MAC = "02:00:00:00:00:01"
SERVER_MAC = "02:00:00:00:00:02"
MSS = 1460
BULK = 64 * 1024  # per mode: 64 KiB of TCP payload


def _run(tso: bool):
    sim = Simulator()
    client, server = make_remote_pair(
        sim, client_core=CpuCore(sim, os_jitter_probability=0))
    client.add_vport_for_mac(1, CLIENT_MAC)
    server.add_vport_for_mac(1, SERVER_MAC)
    sender = client.driver.create_eth_qp(vport=1, buffer_size=16384)
    receiver = server.driver.create_eth_qp(vport=1, rq_entries=2048)
    receiver.post_rx_buffers(2048)
    received = {"bytes": 0, "packets": 0, "last": 0.0}

    def on_receive(data, cqe):
        received["bytes"] += cqe.byte_count
        received["packets"] += 1
        received["last"] = sim.now

    receiver.on_receive = on_receive
    flow = Flow(CLIENT_MAC, SERVER_MAC, "10.0.0.1", "10.0.0.2",
                5000, 5201, proto=PROTO_TCP)

    def drive(sim):
        sent = 0
        while sent < BULK:
            if tso:
                chunk = min(BULK - sent, 8 * MSS)
                frame = flow.make_packet(bytes(chunk),
                                         fill_checksums=False)
                yield from sender.wait_for_tx_space()
                sender.send_tso(frame.to_bytes(), mss=MSS)
            else:
                chunk = min(BULK - sent, MSS)
                frame = flow.make_packet(bytes(chunk))
                yield from sender.wait_for_tx_space()
                sender.send(frame.to_bytes())
            sent += chunk

    sim.spawn(drive(sim))
    sim.run(until=0.1)
    return {
        "mode": "lso" if tso else "host-segmented",
        "payload_kib": received["bytes"] // 1024,
        "wire_packets": received["packets"],
        "descriptors": sender.sq.stats_wqes,
        "doorbells": (sender.sq.stats_doorbells
                      + sender.sq.stats_mmio_wqes),
        "gbps": received["bytes"] * 8 / received["last"] / 1e9,
    }


def test_ablation_tso(benchmark):
    rows = run_once(benchmark, lambda: [_run(False), _run(True)])
    print_table("Ablation: TCP segmentation offload (64 KiB stream)",
                rows)

    host, lso = rows[0], rows[1]
    # Same wire behaviour...
    assert host["wire_packets"] == lso["wire_packets"]
    # ...at an order of magnitude fewer descriptors and doorbells.
    assert lso["descriptors"] * 7 <= host["descriptors"]
    assert lso["doorbells"] * 7 <= host["doorbells"]
    # Throughput no worse with LSO.
    assert lso["gbps"] >= host["gbps"] * 0.9
