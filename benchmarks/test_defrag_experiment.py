"""§8.2.2: the IP defragmentation experiment.

Paper numbers (Gbps): no fragmentation 23.2; fragmented + software
defrag 3.2 (RSS broken, one core); fragmented + hardware defrag 22.4
(7x); VXLAN + hardware defrag 5.25x over the software case (the
*sender* becomes the bottleneck).
"""

import pytest

from repro.experiments.defrag import CONFIGS, experiment_points

from .conftest import print_table, run_once, run_points


def test_defrag_experiment(benchmark):
    def run():
        return {r["config"]: r
                for r in run_points(experiment_points(rounds=40,
                                                      configs=CONFIGS))}

    results = run_once(benchmark, run)
    rows = [
        {"config": c, "goodput_gbps": r["goodput_gbps"],
         "active_cores": r["active_cores"],
         "accel_reassembled": r["accel_reassembled"]}
        for c, r in results.items()
    ]
    print_table("§8.2.2: IP defragmentation goodput", rows)

    nofrag = results["nofrag"]["goodput_gbps"]
    sw = results["sw-defrag"]["goodput_gbps"]
    hw = results["hw-defrag"]["goodput_gbps"]
    vxlan_sw = results["vxlan-sw"]["goodput_gbps"]
    vxlan_hw = results["vxlan-hw"]["goodput_gbps"]

    # Baseline near line rate across all cores (paper: 23.2).
    assert nofrag == pytest.approx(23.2, abs=1.5)
    assert results["nofrag"]["active_cores"] >= 6

    # Fragmentation breaks RSS: one core, order-of-magnitude collapse
    # (paper: 3.2 Gbps).
    assert results["sw-defrag"]["active_cores"] == 1
    assert sw == pytest.approx(3.2, abs=1.0)

    # Hardware defrag restores RSS and ~line rate (paper: 22.4, 7x).
    assert results["hw-defrag"]["active_cores"] >= 6
    assert hw == pytest.approx(22.4, abs=1.5)
    assert 5.5 < hw / sw < 10.0

    # VXLAN: decap offload composes with defrag; the software sender
    # becomes the bottleneck, so the speedup is lower (paper: 5.25x).
    assert vxlan_hw < hw
    assert 4.0 < vxlan_hw / vxlan_sw < 7.5
    # Every fragment that reached the accelerator was reassembled.
    assert results["hw-defrag"]["accel_reassembled"] > 0
