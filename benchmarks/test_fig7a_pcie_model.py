"""Figure 7a: the PCIe performance model vs raw Ethernet.

For each (Ethernet rate, PCIe rate) configuration, computes achievable
echo throughput across packet sizes.  Shape targets from §8.1: the
prototype's 25 GbE / 50 Gbps-PCIe configuration meets line rate for all
but the smallest packets; equal-rate configurations converge toward the
Ethernet line as packets grow (the PCIe per-packet overhead amortizes).
"""

from repro.models.perf import FldPerfModel
from repro.sweep import SweepPoint

from .conftest import print_table, run_once, run_points


def test_fig7a(benchmark):
    point = SweepPoint("fig7a", "repro.models.perf:figure7a")
    rows = run_once(benchmark, lambda: run_points([point])[0])
    print_table("Fig. 7a: FLD-over-PCIe vs raw Ethernet (Gbps)", rows,
                columns=["config", "size", "ethernet_gbps", "fld_gbps",
                         "fraction_of_ethernet"])

    by_config = {}
    for row in rows:
        by_config.setdefault(row["config"], []).append(row)

    # Prototype config: line rate everywhere above 64 B.
    for row in by_config["25G-eth/50G-pcie"]:
        if row["size"] >= 128:
            assert row["fraction_of_ethernet"] > 0.999
    # 64 B is the one point below line even with 2x PCIe headroom.
    smallest = by_config["25G-eth/50G-pcie"][0]
    assert smallest["size"] == 64 and smallest["fraction_of_ethernet"] < 1.0

    # Equal-rate configs: fraction grows monotonically with size and
    # exceeds 3/4 by 512 B (paper quotes ~95%; our TLP accounting is
    # more conservative — see EXPERIMENTS.md).
    for config in ("50G-eth/50G-pcie", "100G-eth/100G-pcie"):
        fractions = [r["fraction_of_ethernet"] for r in by_config[config]]
        assert fractions == sorted(fractions)
        at_512 = next(r for r in by_config[config] if r["size"] == 512)
        assert at_512["fraction_of_ethernet"] > 0.75


def test_fig7a_optimization_sensitivity(benchmark):
    """The §6 PCIe optimizations visibly move the model."""
    def build():
        rows = []
        for mmio in (True, False):
            for signal in (1, 16):
                model = FldPerfModel(wqe_by_mmio=mmio,
                                     tx_signal_interval=signal)
                rows.append({
                    "wqe_by_mmio": mmio,
                    "signal_interval": signal,
                    "rate_64B_mpps": model.echo_packet_rate(64) / 1e6,
                })
        return rows

    rows = run_once(benchmark, build)
    print_table("Fig. 7a sensitivity: PCIe optimizations at 64 B", rows)
    best = max(rows, key=lambda r: r["rate_64B_mpps"])
    worst = min(rows, key=lambda r: r["rate_64B_mpps"])
    assert best["wqe_by_mmio"] and best["signal_interval"] == 16
    assert best["rate_64B_mpps"] > worst["rate_64B_mpps"] * 1.05


def test_fig7a_cqe_compression_headroom(benchmark):
    """§8.1's unused optimization: receive-CQE compression would lift
    small-packet throughput further."""
    def build():
        rows = []
        for ratio in (1, 4):
            model = FldPerfModel(rx_cqe_compression_ratio=ratio)
            rows.append({
                "cqe_compression": f"{ratio}x",
                "rate_64B_mpps": model.echo_packet_rate(64) / 1e6,
                "rate_256B_mpps": model.echo_packet_rate(256) / 1e6,
            })
        return rows

    rows = run_once(benchmark, build)
    print_table("Fig. 7a headroom: rx CQE compression", rows)
    assert rows[1]["rate_64B_mpps"] > rows[0]["rate_64B_mpps"] * 1.1
