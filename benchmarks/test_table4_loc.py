"""Table 4: software lines of code per component.

The paper counted its C components with cloc; we count this
reproduction's Python components with the same non-blank/non-comment
rule.  Absolute numbers differ (Python vs C, simulation vs production),
but the *proportions* — the runtime library largest, the client library
and kernel driver small — are the reproduction target.
"""

from repro.models import loc

from .conftest import print_table, run_once

PAPER_LOC = {
    "FLD runtime library": 3753,
    "FLD kernel driver": 1137,
    "FLD-E control-plane": 1554,
    "FLD-R control-plane": 1510,
    "FLD-R client library": 754,
    "ZUC DPDK driver": 732,
}


def test_table4(benchmark):
    table = run_once(benchmark, loc.table4)
    rows = [
        {"component": name, "this repo": count,
         "paper (C)": PAPER_LOC[name]}
        for name, count in table.items()
    ]
    print_table("Table 4: software LOC per component", rows)

    assert set(table) == set(PAPER_LOC)
    for name, count in table.items():
        assert count > 10, f"{name} is implausibly small"
    # Proportion check: the runtime library is the biggest component in
    # both the paper and the reproduction.
    assert table["FLD runtime library"] == max(table.values())


def test_hardware_loc(benchmark):
    """Table 5's LOC column analogue: behavioural-model sizes."""
    table = run_once(benchmark, loc.hardware_loc)
    rows = [{"module": k, "python loc": v} for k, v in table.items()]
    rows.append({"module": "whole library", "python loc":
                 loc.repository_loc()})
    print_table("Hardware-model LOC (cf. Table 5)", rows)
    assert table["FLD"] == max(table.values())  # FLD is the largest model
