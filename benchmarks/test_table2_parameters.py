"""Table 2: the NIC-driver memory-analysis parameters.

Regenerates Table 2a's derived quantities from the base configuration
(100 Gbps, 256 B min packets, 5/25 us lifetimes, 512 queues) and checks
them against the paper's printed values.
"""

import pytest

from repro.models.memory import KIB
from repro.sweep import SweepPoint

from .conftest import print_table, run_once, run_points


def test_table2a(benchmark):
    point = SweepPoint("table2", "repro.models.memory:table2a")
    derived = run_once(benchmark, lambda: run_points([point])[0])
    rows = [
        {"parameter": "Max. packet rate R", "value": f"{derived['packet_rate_mpps']:.0f} Mpps", "paper": "45 Mpps"},
        {"parameter": "Min. TX descriptors", "value": derived["n_txdesc"], "paper": 1133},
        {"parameter": "Min. RX descriptors", "value": derived["n_rxdesc"], "paper": 227},
        {"parameter": "TX bandwidth x delay", "value": f"{derived['tx_bdp_kib']:.0f} KiB", "paper": "305 KiB"},
        {"parameter": "RX bandwidth x delay", "value": f"{derived['rx_bdp_kib']:.0f} KiB", "paper": "61 KiB"},
    ]
    print_table("Table 2a: driver memory analysis parameters", rows)

    assert derived["packet_rate_mpps"] == pytest.approx(45, abs=0.5)
    assert derived["n_txdesc"] == 1133
    assert derived["n_rxdesc"] == 227
    assert derived["tx_bdp_kib"] == pytest.approx(305, abs=1)
    assert derived["rx_bdp_kib"] == pytest.approx(61, abs=1)


def test_table2b_structure_sizes(benchmark):
    """Table 2b: software vs FLD structure sizes."""
    from repro.core import COMPRESSED_CQE_SIZE, COMPRESSED_TX_DESC_SIZE
    from repro.nic import CQE_SIZE, RX_DESC_SIZE, WQE_SIZE

    rows = run_once(benchmark, lambda: [
        {"structure": "Tx descriptor", "software": WQE_SIZE,
         "fld": COMPRESSED_TX_DESC_SIZE},
        {"structure": "Rx descriptor", "software": RX_DESC_SIZE,
         "fld": "- (host)"},
        {"structure": "CQ entry", "software": CQE_SIZE,
         "fld": COMPRESSED_CQE_SIZE},
        {"structure": "Producer index", "software": 4, "fld": 4},
    ])
    print_table("Table 2b: ConnectX/FLD structure sizes (bytes)", rows)
    assert rows[0]["software"] == 64 and rows[0]["fld"] == 8
    assert rows[2]["software"] == 64 and rows[2]["fld"] == 15
