#!/usr/bin/env python
"""Standalone event-engine microbenchmark (no pytest needed).

Measures raw dispatch throughput of the two-tier scheduler in
isolation — no NIC, no PCIe model, just the engine — so scheduler
changes can be judged without the datapath's noise on top.  Three
workloads, each dispatching a known number of events:

* ``ready``  — an in-order continuation stream (monotone
  ``schedule_at`` deadlines), the cut-through fast path: every entry
  should land on the ready deque and never touch the heap;
* ``heap``   — interleaved out-of-order timers, the worst case:
  every entry pays a heappush/heappop;
* ``store``  — producer/consumer pairs over bounded :class:`Store`
  objects, the blocking-handoff pattern the NIC pipeline stages use.

Output is a JSON report (schema 1) with events/sec per workload and
the ready/heap dispatch split measured by a heappush spy.  The report
is a diagnostic artifact (uploaded from CI), not a committed baseline:
wall-clock on shared runners is too noisy to gate on, unlike the
deterministic events-per-packet number guarded by
``check_bench_regression.py``.

Usage::

    python benchmarks/bench_engine.py [--events N] [-o out.json]
"""

import argparse
import json
import os
import sys
import time

REPO_ROOT = os.path.normpath(
    os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.sim import Simulator, Store  # noqa: E402
from repro.sim import engine as _engine  # noqa: E402

TICK = 1e-9


def _count_heap_pushes(sim):
    """Wrap the module-level heappush to count escapes to the heap tier."""
    counter = {"pushes": 0}
    original = _engine._heappush

    def spy(heap, entry):
        counter["pushes"] += 1
        original(heap, entry)

    _engine._heappush = spy
    return counter, lambda: setattr(_engine, "_heappush", original)


def bench_ready(events):
    """In-order continuation stream: the schedule_at fast path."""
    sim = Simulator()
    state = {"left": events}

    def hop():
        if state["left"] > 0:
            state["left"] -= 1
            sim.schedule_at(sim.now + TICK, hop)

    sim.schedule_at(0.0, hop)
    counter, restore = _count_heap_pushes(sim)
    try:
        started = time.perf_counter()
        sim.run()
        wall = time.perf_counter() - started
    finally:
        restore()
    return events + 1, wall, counter["pushes"]


def bench_heap(events):
    """Out-of-order timers: every deadline lands behind the ready tail."""
    sim = Simulator()
    # Two interleaved arithmetic deadline streams with incommensurate
    # strides: successive schedules alternate earlier/later, defeating
    # the monotone-tail test without needing a random source.
    n = 0

    def noop():
        pass

    # The heap cost is paid at schedule time, so the spy and the clock
    # both cover the scheduling loop as well as the drain.
    counter, restore = _count_heap_pushes(sim)
    try:
        started = time.perf_counter()
        for i in range(events):
            if i % 2:
                sim.schedule(1.0 + (i % 1000) * 3e-6, noop)
            else:
                sim.schedule(2.0 - (i % 1000) * 2e-6, noop)
            n += 1
        sim.run()
        wall = time.perf_counter() - started
    finally:
        restore()
    return n, wall, counter["pushes"]


def bench_store(events, pairs=4):
    """Blocking producer/consumer handoffs over bounded stores."""
    sim = Simulator()
    per_pair = events // pairs

    def producer(store):
        for i in range(per_pair):
            yield store.put(i)

    def consumer(store):
        for _ in range(per_pair):
            yield store.get()
            yield sim.timeout(TICK)

    for p in range(pairs):
        store = Store(sim, capacity=8, name=f"bench{p}")
        sim.spawn(producer(store), name=f"prod{p}")
        sim.spawn(consumer(store), name=f"cons{p}")
    counter, restore = _count_heap_pushes(sim)
    try:
        started = time.perf_counter()
        sim.run()
        wall = time.perf_counter() - started
    finally:
        restore()
    # Each handoff costs roughly a put-wake + get-wake + timer.
    return per_pair * pairs * 3, wall, counter["pushes"]


def bench_generator(events):
    """One generator process resuming once per tick — the steady-state
    worker shape the flattened datapath replaces: every dispatch pays a
    timeout Event, a Process resume and a generator frame switch."""
    sim = Simulator()

    def worker():
        for _ in range(events):
            yield sim.timeout(TICK)

    sim.spawn(worker())
    counter, restore = _count_heap_pushes(sim)
    try:
        started = time.perf_counter()
        sim.run()
        wall = time.perf_counter() - started
    finally:
        restore()
    return events + 1, wall, counter["pushes"]


def bench_flat(events):
    """The same once-per-tick cadence as ``generator``, dispatched as a
    flat continuation chain via ``call_later`` — no Event, no Process,
    no frame switch.  The generator/flat events-per-second ratio is the
    per-dispatch saving the flattened hot datapath banks."""
    sim = Simulator()
    state = {"left": events}

    def hop(_arg):
        if state["left"] > 0:
            state["left"] -= 1
            sim.call_later(TICK, hop, None)

    sim.call_later(0.0, hop, None)
    counter, restore = _count_heap_pushes(sim)
    try:
        started = time.perf_counter()
        sim.run()
        wall = time.perf_counter() - started
    finally:
        restore()
    return events + 1, wall, counter["pushes"]


WORKLOADS = [("ready", bench_ready), ("heap", bench_heap),
             ("store", bench_store), ("generator", bench_generator),
             ("flat", bench_flat)]


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--events", type=int, default=200_000,
                        help="approximate dispatches per workload "
                             "(default: 200000)")
    parser.add_argument("-o", "--output", default=None,
                        help="JSON output path (default: stdout only)")
    args = parser.parse_args(argv)

    rows = []
    for name, fn in WORKLOADS:
        dispatched, wall, heap_pushes = fn(args.events)
        rows.append({
            "workload": name,
            "dispatched": dispatched,
            "wall_seconds": wall,
            "events_per_second": dispatched / wall if wall else None,
            "heap_pushes": heap_pushes,
            "heap_share": heap_pushes / dispatched if dispatched else None,
        })
        print(f"{name:>6}: {dispatched} dispatches in {wall:.3f}s "
              f"({dispatched / wall:,.0f} ev/s, "
              f"{heap_pushes / dispatched:.1%} via heap)")

    report = {"bench": "engine_dispatch", "schema": 1,
              "events": args.events, "rows": rows}
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
        print(f"-> {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
