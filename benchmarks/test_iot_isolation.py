"""§8.2.3: the IoT token-authentication offload.

Three results:

* line rate for valid-token traffic at >= 256 B packets;
* forged-HMAC packets dropped before they cost host CPU;
* performance isolation: tenants at 8 + 16 Gbps against a 12 Gbps
  accelerator share it in proportion to arrival rate without shaping
  (paper: 4.15 vs 8.35 Gbps) and get their 6 Gbps allocations with the
  NIC shaping each to 6 Gbps.
"""

import pytest

from repro.experiments.iot import (
    drop_invalid_tokens,
    isolation_points,
    line_rate_points,
)

from .conftest import print_table, run_once, run_points


def test_iot_line_rate(benchmark):
    rows = run_once(benchmark,
                    lambda: run_points(line_rate_points([256, 512, 1024])))
    print_table("§8.2.3: IoT auth line-rate sweep", rows)
    for row in rows:
        assert row["validated_gbps"] >= 0.95 * row["offered_gbps"]
        assert row["invalid"] == 0


def test_iot_drops_forged_tokens(benchmark):
    result = run_once(benchmark, drop_invalid_tokens)
    print_table("§8.2.3: forged-token filtering", [result])
    assert result["valid"] == result["invalid"] == 100
    # Only validated packets reach the host.
    assert result["delivered_to_host"] == result["valid"]


def test_iot_isolation(benchmark):
    def run():
        unshaped, shaped = run_points(isolation_points())
        return {"unshaped": unshaped, "shaped": shaped}

    results = run_once(benchmark, run)
    rows = [dict(name=k, **v) for k, v in results.items()]
    print_table("§8.2.3: tenant isolation (12 Gbps accelerator)", rows,
                columns=["name", "tenant_a_gbps", "tenant_b_gbps",
                         "meter_drops"])

    unshaped, shaped = results["unshaped"], results["shaped"]

    # Without shaping: admission proportional to link share
    # (paper: 4.15 vs 8.35 Gbps for 8 vs 16 Gbps offered).
    assert unshaped["tenant_a_gbps"] == pytest.approx(4.15, abs=0.8)
    assert unshaped["tenant_b_gbps"] == pytest.approx(8.35, abs=1.2)
    ratio = unshaped["tenant_b_gbps"] / unshaped["tenant_a_gbps"]
    assert 1.6 < ratio < 2.4  # tracks the 2:1 offered ratio

    # With 6 Gbps caps: both tenants converge on their allocation.
    assert shaped["tenant_a_gbps"] == pytest.approx(6.0, abs=0.8)
    assert shaped["tenant_b_gbps"] == pytest.approx(6.0, abs=0.8)
    assert shaped["meter_drops"] > 0  # the NIC shaper did the work
