"""Ablation: receive ring in host memory (§5.2).

Two effects to quantify on the live stack:

* **correctness of the in-order recycle** — the host-memory descriptors
  are written once at setup and never touched again, across thousands of
  buffer recycles;
* **cost** — the recycle traffic FLD pays is a 4 B producer-index write
  per *buffer* (64 packets), not per packet.
"""

from repro.experiments.setups import flde_echo_remote
from repro.sim import Simulator

from .conftest import print_table, run_once


def test_ablation_rx_ring_host_memory(benchmark, calibration):
    def run():
        sim = Simulator()
        setup = flde_echo_remote(sim, calibration)
        memory = setup.server.memory
        loadgen = setup.loadgen
        writes_before = memory.stats_writes
        size, count = 1500, 1200
        rate = 25e9 / ((size + 24) * 8)

        def drive(sim):
            yield from loadgen.run_open_loop([size] * count, rate_pps=rate)
            yield from loadgen.drain()

        sim.spawn(drive(sim))
        sim.run(until=2.0)
        binding = setup.runtime.fld.rx.binding(0)
        return {
            "packets": loadgen.stats_received,
            "buffers_recycled": binding.stats_recycled,
            "host_ring_writes_after_setup":
                memory.stats_writes - writes_before,
            "ring_reads_by_nic": memory.stats_reads,
            "pi_writes_per_packet": (binding.stats_recycled
                                     / max(1, loadgen.stats_received)),
        }

    result = run_once(benchmark, run)
    print_table("Ablation: host-memory rx ring economics", [result])

    # The ring is immutable after setup: zero host writes on the path.
    assert result["host_ring_writes_after_setup"] == 0
    # Buffers recycled many times over the run...
    assert result["buffers_recycled"] > 5
    # ...at a PI-write cost amortized far below one per packet.
    assert result["pi_writes_per_packet"] < 0.2
    assert result["packets"] == 1200
