"""Ablation: descriptor compression + address translation (§5.2).

Removes FLD's memory optimizations one at a time from the analytical
model and reports the on-die total — quantifying how much each of the
paper's four techniques contributes to the 105x reduction.
"""

from repro.models.memory import (
    DriverParameters,
    KIB,
    MIB,
    S_CQE_FLD,
    S_CQE_SW,
    S_TXDESC_FLD,
    S_TXDESC_SW,
    desc_translation_bytes,
    data_translation_bytes,
    fld_memory,
    round_pow2,
    software_memory,
)

from .conftest import print_table, run_once


def _variant_totals(p: DriverParameters):
    """On-die bytes for FLD with individual optimizations disabled."""
    base = fld_memory(p)
    full = base["total"]

    # (1) No descriptor compression: 64 B entries in the shared pool
    # and 64 B CQEs.
    no_compress = (
        full
        - round_pow2(p.n_txdesc) * S_TXDESC_FLD
        + round_pow2(p.n_txdesc) * S_TXDESC_SW
        - base["completion_queues"]
        + (round_pow2(p.n_txdesc) + round_pow2(p.n_rxdesc)) * S_CQE_SW
    )

    # (2) No ring translation: a full ring per queue (still compressed).
    no_ring_xlt = (
        full
        - base["tx_rings"]
        + p.num_tx_queues * round_pow2(p.n_txdesc) * S_TXDESC_FLD
    )

    # (3) No data translation: per-queue max-size buffers (no sharing).
    no_data_xlt = (
        full
        - base["tx_buffers"]
        + p.max_packet * p.n_txdesc
    )

    # (4) Rx ring on-die instead of in host memory.
    rx_ring_ondie = full + round_pow2(p.n_rxdesc) * 16

    return {
        "full FLD": full,
        "w/o descriptor compression": no_compress,
        "w/o ring translation": no_ring_xlt,
        "w/o data translation (no sharing)": no_data_xlt,
        "rx ring on-die": rx_ring_ondie,
        "software (none)": software_memory(p)["total"],
    }


def test_ablation_compression(benchmark):
    p = DriverParameters()
    totals = run_once(benchmark, lambda: _variant_totals(p))
    rows = [{"variant": k,
             "total": f"{v / MIB:.2f} MiB" if v > MIB
             else f"{v / KIB:.1f} KiB",
             "vs full": f"x{v / totals['full FLD']:.2f}"}
            for k, v in totals.items()]
    print_table("Ablation: memory optimizations (Table 3 config)", rows)

    full = totals["full FLD"]
    # Every removed optimization costs real memory.
    assert totals["w/o descriptor compression"] > full * 1.1
    # Ring translation is the big one (the x2080 row of Table 3).
    assert totals["w/o ring translation"] > full * 8
    # Data-buffer sharing is the second biggest.
    assert totals["w/o data translation (no sharing)"] > full * 5
    # Host-resident rx ring is small but free.
    assert totals["rx ring on-die"] > full
    # Translation tables pay for themselves several-hundred-fold.
    xlt = desc_translation_bytes(p) + data_translation_bytes(p)
    saved = (totals["w/o ring translation"]
             + totals["w/o data translation (no sharing)"] - 2 * full)
    assert saved / xlt > 100
