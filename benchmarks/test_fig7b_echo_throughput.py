"""Figure 7b: echo bandwidth vs packet size (FLD-E/CPU, local/remote).

Runs the full simulated stack: load generator -> NIC -> (FLD + echo
accelerator | host testpmd) -> back.  Shape targets: every mode tracks
its model curve for large packets; FLD-E matches or beats the
single-core CPU driver at small packet sizes; the local (PCIe-bound)
configuration exceeds the 25 GbE remote ceiling for large frames.
"""

import pytest

from repro.experiments.echo import fig7b_points

from .conftest import print_table, run_once, run_points

SIZES = [64, 128, 256, 512, 1024, 1500]


def test_fig7b(benchmark):
    def run():
        return run_points(fig7b_points(
            sizes=SIZES, count=900,
            modes=["flde-remote", "cpu-remote", "flde-local"]))

    rows = run_once(benchmark, run)
    print_table("Fig. 7b: echo throughput (Gbps)", rows,
                columns=["mode", "size", "gbps", "model_gbps", "mpps",
                         "received", "sent"])

    by_mode = {}
    for row in rows:
        by_mode.setdefault(row["mode"], {})[row["size"]] = row

    flde = by_mode["flde-remote"]
    cpu = by_mode["cpu-remote"]
    local = by_mode["flde-local"]

    # Large packets: both remote modes meet the model/line rate.
    for size in (512, 1024, 1500):
        assert flde[size]["gbps"] >= flde[size]["model_gbps"] * 0.95
        assert cpu[size]["gbps"] >= cpu[size]["model_gbps"] * 0.95

    # Small packets: FLD-E drives the NIC at least as hard as one core.
    for size in (64, 128, 256):
        assert flde[size]["mpps"] >= cpu[size]["mpps"] * 0.95

    # Throughput grows with size everywhere.
    for mode_rows in by_mode.values():
        series = [mode_rows[s]["gbps"] for s in SIZES]
        assert all(b >= a * 0.98 for a, b in zip(series, series[1:]))

    # Local (PCIe-limited) beats the 25G wire for large frames and
    # stays below the 50G PCIe ceiling.
    assert local[1500]["gbps"] > 30.0
    assert local[1500]["gbps"] < 50.0


def test_fig7b_fldr_column(benchmark):
    """Fig. 7b's FLD-R rows: RDMA echo goodput vs message size.

    §8.1.2: FLD-R is slightly below FLD-E but meets its 25 Gbps target
    for messages >= 512 B, and messages beyond the 1024 B RoCE MTU ride
    the NIC's hardware segmentation.
    """
    from repro.experiments.echo import fldr_points

    def run():
        return run_points(fldr_points(
            sizes=[64, 256, 512, 1024, 4096, 8192], count=300))

    rows = run_once(benchmark, run)
    print_table("Fig. 7b (right): FLD-R echo throughput", rows,
                columns=["mode", "size", "gbps", "segments_per_message",
                         "received"])

    by_size = {r["size"]: r for r in rows}
    # Goodput grows with message size and approaches the 25G line's
    # goodput ceiling (~23.3 Gbps at 1 KiB MTU framing) from 512 B on.
    series = [by_size[s]["gbps"] for s in (64, 256, 512, 1024, 4096)]
    assert series == sorted(series)
    for size in (1024, 4096, 8192):
        assert by_size[size]["gbps"] > 20.0
    # Multi-segment messages (hardware segmentation) lose nothing.
    assert by_size[8192]["segments_per_message"] == 8
    assert all(r["received"] == 300 for r in rows)
