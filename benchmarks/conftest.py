"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures,
prints the rows in the paper's format (so `pytest benchmarks/
--benchmark-only -s` reads like the evaluation section), asserts the
reproduction's *shape* claims, and reports wall time via
pytest-benchmark.
"""

from __future__ import annotations

from typing import Dict, List


def print_table(title: str, rows: List[Dict], columns=None) -> None:
    """Render rows as an aligned text table under a banner."""
    print(f"\n=== {title} ===")
    if not rows:
        print("(no rows)")
        return
    columns = columns or list(rows[0].keys())
    widths = {
        c: max(len(str(c)), *(len(_fmt(r.get(c))) for r in rows))
        for c in columns
    }
    header = "  ".join(str(c).ljust(widths[c]) for c in columns)
    print(header)
    print("-" * len(header))
    for row in rows:
        print("  ".join(_fmt(row.get(c)).ljust(widths[c]) for c in columns))


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
