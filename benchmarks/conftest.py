"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures,
prints the rows in the paper's format (so `pytest benchmarks/
--benchmark-only -s` reads like the evaluation section), asserts the
reproduction's *shape* claims, and reports wall time via
pytest-benchmark.

Benches hold **no state at module scope**: each test builds its own
:class:`~repro.experiments.setups.Calibration` (via the ``calibration``
fixture) and its own testbed, so pool workers / parallel pytest runs
cannot cross-contaminate.  Sweep-shaped benches execute through
:func:`repro.sweep.run_sweep` via :func:`run_points`:

* ``REPRO_JOBS=N``      runs each sweep across N worker processes
                        (bit-identical results — CI diffs them);
* ``REPRO_CACHE_DIR=d`` memoizes sweep points in ``d`` across runs
                        (off by default: a benchmark that reads cached
                        results would time nothing).
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence

import pytest

from repro.experiments.setups import Calibration
from repro.reporting import format_table
from repro.sweep import SweepCache, SweepPoint, default_cache, run_sweep


def sweep_jobs() -> int:
    """Worker count for sweep-shaped benches (REPRO_JOBS, default 1)."""
    return max(1, int(os.environ.get("REPRO_JOBS", "1")))


def sweep_cache() -> Optional[SweepCache]:
    """A shared result cache, only when REPRO_CACHE_DIR is set."""
    directory = os.environ.get("REPRO_CACHE_DIR")
    return default_cache(directory) if directory else None


def run_points(points: Sequence[SweepPoint]) -> List:
    """Execute a benchmark's sweep under the environment's knobs."""
    return run_sweep(points, jobs=sweep_jobs(), cache=sweep_cache()).rows


@pytest.fixture
def calibration() -> Calibration:
    """A fresh calibration per test — never share one across benches."""
    return Calibration()


def print_table(title: str, rows: List[Dict], columns=None) -> None:
    """Render rows as an aligned text table under a banner."""
    print(format_table(title, rows, columns))


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
