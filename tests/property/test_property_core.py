"""Property-based tests (hypothesis) for the core data structures."""

from hypothesis import given, settings, strategies as st

from repro.core import (
    BufferPool,
    CompressedCqe,
    CompressedTxDescriptor,
    CuckooFullError,
    CuckooHashTable,
)
from repro.nic import Cqe, RxDesc, TxWqe
from repro.nic.wqe import OP_ETH_SEND, OP_RDMA_SEND


class TestCuckooProperties:
    @given(st.lists(st.integers(0, 10_000), unique=True, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_everything_inserted_is_found(self, keys):
        table = CuckooHashTable(capacity=max(1, len(keys)), load_factor=0.5)
        for key in keys:
            table.insert(key, key * 2)
        for key in keys:
            assert table.lookup(key) == key * 2
        assert len(table) == len(keys)

    @given(st.lists(st.tuples(st.booleans(), st.integers(0, 50)),
                    max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_mixed_operations_match_dict(self, operations):
        """The cuckoo table behaves exactly like a dict under churn."""
        table = CuckooHashTable(capacity=64, load_factor=0.5)
        model = {}
        for is_insert, key in operations:
            if is_insert and key not in model:
                if len(model) < 64:
                    table.insert(key, key)
                    model[key] = key
            elif not is_insert and key in model:
                assert table.remove(key) == model.pop(key)
        for key, value in model.items():
            assert table.lookup(key) == value
        assert len(table) == len(model)

    @given(st.integers(1, 512))
    @settings(max_examples=30, deadline=None)
    def test_half_load_never_stalls(self, capacity):
        """The paper's provisioning guarantee (§5.2)."""
        table = CuckooHashTable(capacity=capacity, load_factor=0.5)
        for i in range(capacity):
            table.insert(("k", i), i)  # must not raise
        assert len(table) == capacity


class TestBufferPoolProperties:
    @given(st.lists(st.integers(1, 4096), max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_alloc_free_conserves_chunks(self, sizes):
        pool = BufferPool(64 * 1024, chunk_size=256)
        allocations = []
        for size in sizes:
            handles = pool.alloc(size)
            if handles is not None:
                allocations.append(handles)
        for handles in allocations:
            pool.release_all(handles)
        assert pool.free_chunks == pool.num_chunks

    @given(st.binary(min_size=1, max_size=4096))
    @settings(max_examples=50, deadline=None)
    def test_scattered_write_read_roundtrip(self, data):
        pool = BufferPool(8 * 1024, chunk_size=256)
        handles = pool.alloc(len(data))
        pool.write_scattered(handles, data)
        assert pool.read_scattered(handles, len(data)) == data

    @given(st.integers(1, 8 * 1024))
    @settings(max_examples=50, deadline=None)
    def test_chunks_for_covers_size(self, nbytes):
        pool = BufferPool(8 * 1024, chunk_size=256)
        chunks = pool.chunks_for(nbytes)
        assert chunks * 256 >= nbytes
        assert (chunks - 1) * 256 < nbytes


class TestDescriptorFormatProperties:
    @given(handle=st.integers(0, 0xFFFF), length=st.integers(0, 0xFFFF),
           context=st.integers(0, 0xFFFFFF),
           opcode=st.sampled_from([OP_ETH_SEND, OP_RDMA_SEND]),
           signaled=st.booleans())
    @settings(max_examples=100, deadline=None)
    def test_compressed_descriptor_roundtrip(self, handle, length, context,
                                             opcode, signaled):
        desc = CompressedTxDescriptor(handle, length, context, opcode,
                                      signaled)
        again = CompressedTxDescriptor.unpack(desc.pack())
        assert (again.handle, again.length, again.context_id, again.opcode,
                again.signaled) == (handle, length, context, opcode,
                                    signaled)

    @given(opcode=st.integers(0, 255), qpn=st.integers(0, 0xFFFFFF),
           counter=st.integers(0, 0xFFFF), count=st.integers(0, 0xFFFF),
           flags=st.integers(0, 255), tag=st.integers(0, 0xFFFFFFFF),
           stride=st.integers(0, 0xFFFF))
    @settings(max_examples=100, deadline=None)
    def test_compressed_cqe_roundtrip(self, opcode, qpn, counter, count,
                                      flags, tag, stride):
        cqe = CompressedCqe(opcode, qpn, counter, count, flags, tag, stride)
        again = CompressedCqe.unpack(cqe.pack())
        for field in CompressedCqe.__slots__:
            assert getattr(again, field) == getattr(cqe, field)

    @given(qpn=st.integers(0, 0xFFFFFF), counter=st.integers(0, 0xFFFF),
           addr=st.integers(0, (1 << 64) - 1),
           count=st.integers(0, 0xFFFFFFFF), flags=st.integers(0, 255),
           context=st.integers(0, 0xFFFFFFFF))
    @settings(max_examples=100, deadline=None)
    def test_nic_wqe_roundtrip(self, qpn, counter, addr, count, flags,
                               context):
        wqe = TxWqe(OP_ETH_SEND, qpn, counter, addr, count, flags,
                    context_id=context)
        again = TxWqe.unpack(wqe.pack())
        assert (again.qpn, again.wqe_index, again.buffer_addr,
                again.byte_count, again.flags, again.context_id) == (
            qpn, counter & 0xFFFF, addr, count, flags, context)

    def test_compression_expansion_inverse(self):
        """expand() then compress-relevant-fields is lossless."""
        desc = CompressedTxDescriptor(7, 1200, context_id=0x1234,
                                      opcode=OP_RDMA_SEND, signaled=True)
        wqe = desc.expand(qpn=3, wqe_index=9, buffer_addr=0x5000)
        assert wqe.opcode == OP_RDMA_SEND
        assert wqe.byte_count == desc.length
        assert wqe.context_id == desc.context_id
        assert wqe.signaled == desc.signaled
