"""Property-based round-trip tests for the vectorized codecs.

Each batched codec (``pack_many``/``unpack_many``) must agree with its
scalar twin on *arbitrary* field values and on arbitrary raw bytes —
not just the values the experiments happen to produce.  Every property
is checked in both modes; in scalar mode the batched entry points take
their fallback loop, so the fallback is exercised by the same inputs.
"""

from hypothesis import given, settings, strategies as st

from repro import batching
from repro.core import (
    COMPRESSED_CQE_SIZE,
    COMPRESSED_TX_DESC_SIZE,
    CompressedCqe,
    CompressedTxDescriptor,
    CuckooHashTable,
)
from repro.nic import CQE_SIZE, Cqe, RxDesc, TxWqe, WQE_SIZE
from repro.nic.wqe import OP_ETH_SEND, OP_RDMA_SEND, RX_DESC_SIZE
from repro.pcie.tlp import Tlp, TlpType

u8 = st.integers(0, 0xFF)
u16 = st.integers(0, 0xFFFF)
u24 = st.integers(0, 0xFFFFFF)
u32 = st.integers(0, 0xFFFFFFFF)
u64 = st.integers(0, 0xFFFFFFFFFFFFFFFF)

tx_wqes = st.builds(
    TxWqe, opcode=u8, qpn=u32, wqe_index=u16, buffer_addr=u64,
    byte_count=u32, flags=u8, lkey=u32, context_id=u32,
    ack_req=st.booleans(), remote_addr=u64, rkey=u32, mss=u16,
)
cqes = st.builds(
    Cqe, opcode=u8, qpn=u32, wqe_counter=u16, byte_count=u32, flags=u8,
    rss_hash=u32, flow_tag=u32, stride_index=u16, owner=u8, syndrome=u8,
)
rx_descs = st.builds(RxDesc, buffer_addr=u64, byte_count=u32, lkey=u32)
tx_descs = st.builds(
    CompressedTxDescriptor, handle=u16, length=u16, context_id=u24,
    opcode=st.sampled_from([OP_ETH_SEND, OP_RDMA_SEND]),
    signaled=st.booleans(),
)
compressed_cqes = st.builds(
    CompressedCqe, opcode=u8, qpn=u24, wqe_counter=u16, byte_count=u16,
    flags=u8, flow_tag=u32, stride_index=u16,
)

CODECS = [
    (TxWqe, tx_wqes, WQE_SIZE),
    (Cqe, cqes, CQE_SIZE),
    (RxDesc, rx_descs, RX_DESC_SIZE),
    (CompressedTxDescriptor, tx_descs, COMPRESSED_TX_DESC_SIZE),
    (CompressedCqe, compressed_cqes, COMPRESSED_CQE_SIZE),
]


def in_both_modes(check):
    """Run ``check()`` with the batched paths on, then forced off."""
    previous = batching.set_batch_enabled(True)
    try:
        check()
        batching.set_batch_enabled(False)
        check()
    finally:
        batching.set_batch_enabled(previous)


def fields_of(obj):
    return {
        name: getattr(obj, name)
        for name in type(obj).__slots__
        if name != "trace_ctx"
    }


class TestCodecRoundTrips:
    @given(st.data(), st.integers(0, len(CODECS) - 1))
    @settings(max_examples=120, deadline=None)
    def test_pack_many_matches_joined_scalar_packs(self, data, which):
        cls, strategy, _size = CODECS[which]
        objs = data.draw(st.lists(strategy, max_size=20))

        def check():
            assert cls.pack_many(objs) == b"".join(o.pack() for o in objs)

        in_both_modes(check)

    @given(st.data(), st.integers(0, len(CODECS) - 1))
    @settings(max_examples=120, deadline=None)
    def test_unpack_many_matches_scalar_unpacks(self, data, which):
        cls, strategy, size = CODECS[which]
        objs = data.draw(st.lists(strategy, max_size=20))
        blob = b"".join(o.pack() for o in objs)

        def check():
            many = cls.unpack_many(blob, len(objs))
            singles = [cls.unpack(blob[i * size:(i + 1) * size])
                       for i in range(len(objs))]
            assert [fields_of(m) for m in many] \
                == [fields_of(s) for s in singles]

        in_both_modes(check)

    @given(st.data(), st.integers(0, len(CODECS) - 1))
    @settings(max_examples=120, deadline=None)
    def test_round_trip_preserves_every_field(self, data, which):
        cls, strategy, _size = CODECS[which]
        objs = data.draw(st.lists(strategy, min_size=1, max_size=12))

        def check():
            decoded = cls.unpack_many(cls.pack_many(objs), len(objs))
            assert [fields_of(d) for d in decoded] \
                == [fields_of(o) for o in objs]

        in_both_modes(check)

    @given(st.integers(0, 2), st.integers(0, 16), st.data())
    @settings(max_examples=120, deadline=None)
    def test_arbitrary_raw_bytes_decode_identically(self, which, count,
                                                    data):
        # Only the NIC-format codecs accept arbitrary bytes (the
        # compressed formats reject reserved opcode bits by design).
        cls, _strategy, size = CODECS[which]
        blob = data.draw(st.binary(min_size=count * size,
                                   max_size=count * size))

        def check():
            many = cls.unpack_many(blob, count)
            singles = [cls.unpack(blob[i * size:(i + 1) * size])
                       for i in range(count)]
            assert [fields_of(m) for m in many] \
                == [fields_of(s) for s in singles]

        in_both_modes(check)


class TestCuckooBatchLookupProperties:
    @given(st.dictionaries(st.integers(0, 1 << 40), u32, max_size=48),
           st.lists(st.integers(0, 1 << 40), max_size=64))
    @settings(max_examples=80, deadline=None)
    def test_int_keys_match_scalar_lookup(self, mapping, probes):
        table = CuckooHashTable(capacity=128, load_factor=0.5)
        for key, value in mapping.items():
            table.insert(key, value)
        probes += list(mapping)

        def check():
            assert table.lookup_many(probes) \
                == [mapping.get(k) for k in probes]

        in_both_modes(check)

    @given(st.dictionaries(st.tuples(u16, u16), u32, max_size=48),
           st.lists(st.tuples(u16, u16), max_size=64))
    @settings(max_examples=80, deadline=None)
    def test_tuple_keys_match_scalar_lookup(self, mapping, probes):
        """(queue, index) keys — the translation-table shape."""
        table = CuckooHashTable(capacity=128, load_factor=0.5)
        for key, value in mapping.items():
            table.insert(key, value)
        probes += list(mapping)

        def check():
            assert table.lookup_many(probes) \
                == [table.lookup(k) for k in probes]

        in_both_modes(check)

    @given(st.lists(st.one_of(st.integers(-5, 5),
                              st.integers(1 << 61, 1 << 64),
                              st.text(max_size=4)),
                    min_size=2, max_size=16))
    @settings(max_examples=40, deadline=None)
    def test_unvectorizable_keys_fall_back_correctly(self, keys):
        """Negative / huge ints and strings can't use the uint64 hash
        emulation; lookup_many must still answer like scalar lookup."""
        table = CuckooHashTable(capacity=64, load_factor=0.5)
        for i, key in enumerate(dict.fromkeys(keys)):
            table.insert(key, i)

        def check():
            assert table.lookup_many(keys) == [table.lookup(k)
                                               for k in keys]

        in_both_modes(check)


class TestTlpWireBytesCache:
    @given(st.sampled_from(list(TlpType)), st.integers(0, 4096),
           st.booleans())
    @settings(max_examples=80, deadline=None)
    def test_cached_size_is_stable_and_consistent(self, kind, length,
                                                  with_data):
        data = bytes(length) if with_data else None
        tlp = Tlp(kind, address=0x1000, length=length, data=data)
        first = tlp.wire_bytes()
        assert tlp.wire_bytes() == first  # cache returns the same size
        assert first == (tlp.header_wire_bytes()
                         + tlp.payload_wire_bytes())
        twin = Tlp(kind, address=0x2000, length=length,
                   data=bytes(length) if with_data else None)
        assert twin.wire_bytes() == first
