"""Property-based tests (hypothesis) for the sweep cache keys and the
corrupt-entry fallback."""

import json
import os
import tempfile

from hypothesis import given, settings, strategies as st

from repro.sweep import (
    CacheEntry,
    SweepCache,
    SweepPoint,
    cache_key,
    canonical_params,
    point_seed,
    run_sweep,
)

# JSON-representable param values, one level of nesting deep — the
# shapes experiment drivers actually pass.
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-(2 ** 40), 2 ** 40),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=20),
)
values = st.one_of(scalars, st.lists(scalars, max_size=4),
                   st.dictionaries(st.text(max_size=8), scalars,
                                   max_size=4))
params_st = st.dictionaries(st.text(min_size=1, max_size=12), values,
                            max_size=6)


class TestKeyStability:
    @given(params=params_st, order=st.randoms())
    @settings(max_examples=60, deadline=None)
    def test_key_is_independent_of_insertion_order(self, params, order):
        keys = list(params)
        order.shuffle(keys)
        reordered = {k: params[k] for k in keys}
        assert (cache_key("exp", "m:f", params)
                == cache_key("exp", "m:f", reordered))
        assert canonical_params(params) == canonical_params(reordered)

    @given(params=params_st)
    @settings(max_examples=60, deadline=None)
    def test_canonical_params_round_trips(self, params):
        assert json.loads(canonical_params(params)) == params

    @given(params=params_st, extra=st.integers())
    @settings(max_examples=60, deadline=None)
    def test_key_changes_when_params_change(self, params, extra):
        changed = dict(params)
        changed["__extra__"] = extra
        assert (cache_key("exp", "m:f", params)
                != cache_key("exp", "m:f", changed))

    @given(params=params_st,
           versions=st.lists(st.text(min_size=1, max_size=10),
                             min_size=2, max_size=2, unique=True))
    @settings(max_examples=60, deadline=None)
    def test_key_changes_when_version_changes(self, params, versions):
        assert (cache_key("exp", "m:f", params, version=versions[0])
                != cache_key("exp", "m:f", params, version=versions[1]))

    @given(params=params_st)
    @settings(max_examples=60, deadline=None)
    def test_seed_is_a_valid_64_bit_int(self, params):
        seed = point_seed(cache_key("exp", "m:f", params))
        assert 0 <= seed < 2 ** 64


class TestCorruptEntries:
    @given(garbage=st.binary(max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_arbitrary_bytes_never_crash_load(self, garbage):
        with tempfile.TemporaryDirectory() as tmp:
            cache = SweepCache(os.path.join(tmp, "cache"))
            point = SweepPoint("exp", "tests.sweep.targets:add",
                               {"a": 1, "b": 2})
            path = cache._path(point.key())
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "wb") as fh:
                fh.write(garbage)
            loaded = cache.load(point.key())
            # Only the exact entry JSON (format marker + matching key)
            # may load; everything else is a miss.
            if loaded is not None:
                assert loaded.key == point.key()

    @given(damage=st.integers(0, 2))
    @settings(max_examples=15, deadline=None)
    def test_corrupted_entry_falls_back_to_recompute(self, damage):
        with tempfile.TemporaryDirectory() as tmp:
            cache = SweepCache(os.path.join(tmp, "cache"))
            point = SweepPoint("exp", "tests.sweep.targets:add",
                               {"a": 3, "b": 4})
            cold = run_sweep([point], cache=cache)
            path = cache._path(point.key())
            if damage == 0:      # truncate mid-JSON
                with open(path, "w") as fh:
                    fh.write('{"format": "repro-sweep-entry-v1", "key')
            elif damage == 1:    # valid JSON, wrong format marker
                with open(path, "w") as fh:
                    json.dump({"format": "elsewhere-v9"}, fh)
            else:                # valid entry shape, key mismatch
                entry = CacheEntry(key="0" * 64, experiment="exp",
                                   target="tests.sweep.targets:add",
                                   params={}, seed=0, result=None)
                with open(path, "w") as fh:
                    json.dump(entry.to_json(), fh)

            warm = run_sweep([point], cache=cache)
            assert warm.computed == 1 and warm.cache_hits == 0
            assert warm.rows == cold.rows
            # The recompute overwrote the damaged entry: next run hits.
            again = run_sweep([point], cache=cache)
            assert again.cache_hits == 1
            assert again.rows == cold.rows
