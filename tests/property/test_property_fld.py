"""Stateful property tests for FLD's resource management.

The invariants that make the compressed/translated design safe:
resources (descriptor slots, buffer chunks, credits) are conserved
across arbitrary submit/complete interleavings, and MPRQ stride
placement never overlaps.
"""

from hypothesis import given, settings, strategies as st

from repro.core import AxisMetadata, BufferPool, TxRingManager
from repro.nic import CompletionQueue, MultiPacketReceiveQueue
from repro.sim import Simulator


class TestTxManagerConservation:
    @given(st.lists(st.tuples(st.booleans(), st.integers(1, 2048)),
                    min_size=1, max_size=120))
    @settings(max_examples=40, deadline=None)
    def test_random_submit_complete_conserves_resources(self, operations):
        """(submit, size) / (complete, _) sequences leave no leaks."""
        sim = Simulator()
        pool = BufferPool(64 * 1024, chunk_size=256)
        tx = TxRingManager(sim, pool, descriptor_pool_size=64)
        tx.add_queue(0, qpn=1, entries=32, doorbell_addr=0, mmio_addr=0)
        state = tx.queue(0)
        outstanding = 0
        submitted = 0
        for is_submit, size in operations:
            if is_submit:
                if (outstanding < 32
                        and pool.free_chunks >= pool.chunks_for(size)
                        and tx.descriptors.free_slots > 0):
                    tx.submit(0, bytes(size), AxisMetadata(queue_id=0))
                    outstanding += 1
                    submitted += 1
            elif outstanding > 0:
                # Complete the oldest outstanding WQE (cumulative).
                tx.on_send_completion(1, state.ci & 0xFFFF)
                outstanding -= 1
        # Drain everything.
        if outstanding:
            tx.on_send_completion(1, (state.pi - 1) & 0xFFFF)
        assert pool.free_chunks == pool.num_chunks
        assert tx.descriptors.free_slots == tx.descriptors.capacity
        assert state.stats_completed == submitted
        assert not state.outstanding

    @given(st.lists(st.integers(1, 4096), min_size=1, max_size=31))
    @settings(max_examples=40, deadline=None)
    def test_nic_reads_match_submissions(self, sizes):
        """Every outstanding WQE the NIC could read expands correctly."""
        from repro.nic import TxWqe, WQE_SIZE
        sim = Simulator()
        pool = BufferPool(256 * 1024, chunk_size=256)
        tx = TxRingManager(sim, pool, descriptor_pool_size=64,
                           bar_base=0x1000_0000)
        tx.add_queue(0, qpn=9, entries=32, doorbell_addr=0, mmio_addr=0)
        payloads = []
        for i, size in enumerate(sizes):
            data = bytes([i & 0xFF]) * size
            payloads.append(data)
            tx.submit(0, data, AxisMetadata(queue_id=0))
        for i, data in enumerate(payloads):
            raw = tx.handle_ring_read(0, (i % 32) * WQE_SIZE, WQE_SIZE)
            wqe = TxWqe.unpack(raw)
            assert wqe.byte_count == len(data)
            virt = (wqe.buffer_addr - 0x1000_0000) & 0x7_FFFF
            assert tx.handle_data_read(0, virt, len(data)) == data


class TestMprqPlacement:
    @given(st.lists(st.integers(1, 8192), min_size=1, max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_strides_never_overlap(self, sizes):
        sim = Simulator()
        cq = CompletionQueue(sim, 1, 0, 1024)
        rq = MultiPacketReceiveQueue(sim, 1, 0, 256, cq,
                                     strides_per_buffer=64,
                                     stride_size=256)
        rq.post(256)
        occupied = set()
        for size in sizes:
            placement = rq.place(size)
            if placement is None:
                break
            span = range(
                placement["stride_index"],
                placement["stride_index"] + placement["strides"],
            )
            for stride in span:
                key = (placement["desc_index"], stride)
                assert key not in occupied, "stride reused while open"
                occupied.add(key)
            # Strides fit inside the buffer.
            assert placement["stride_index"] + placement["strides"] <= 64
            # The placement covers the packet.
            assert placement["strides"] * 256 >= size

    @given(st.lists(st.integers(1, 4096), min_size=10, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_waste_bounded_by_half_buffer(self, sizes):
        """§5.2: MPRQ fragmentation is bounded — tail waste per closed
        buffer is less than the largest packet's strides."""
        sim = Simulator()
        cq = CompletionQueue(sim, 1, 0, 1024)
        rq = MultiPacketReceiveQueue(sim, 1, 0, 1024, cq,
                                     strides_per_buffer=32,
                                     stride_size=256)
        rq.post(1024)
        for size in sizes:
            if rq.place(size) is None:
                break
        if rq.stats_buffers_closed:
            max_strides = max(rq.strides_for(s) for s in sizes)
            waste_per_buffer = (rq.stats_wasted_strides
                                / rq.stats_buffers_closed)
            assert waste_per_buffer < max_strides
