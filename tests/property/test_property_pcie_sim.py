"""Property-based tests for the PCIe fabric and simulation engine."""

from hypothesis import assume, given, settings, strategies as st

from repro.pcie import MemoryRegion, PcieFabric, PcieLinkConfig
from repro.pcie.tlp import completion_chunks, read_wire_bytes, \
    split_write_bytes, write_wire_bytes
from repro.sim import Link, Simulator, Store


class TestTlpProperties:
    @given(length=st.integers(1, 1 << 20), mps=st.sampled_from(
        [64, 128, 256, 512, 1024]))
    @settings(max_examples=100, deadline=None)
    def test_split_covers_exactly(self, length, mps):
        chunks = split_write_bytes(length, mps)
        assert sum(chunks) == length
        assert all(0 < c <= mps for c in chunks)
        # Only the last chunk may be partial.
        assert all(c == mps for c in chunks[:-1])

    @given(length=st.integers(1, 1 << 16),
           rcb=st.sampled_from([64, 128, 256]),
           mrr=st.sampled_from([128, 256, 512, 1024]))
    @settings(max_examples=100, deadline=None)
    def test_read_wire_bytes_bounds(self, length, rcb, mrr):
        assume(rcb <= mrr)
        requests, completions = read_wire_bytes(length, rcb, mrr)
        # Completions carry all the data plus per-chunk overhead.
        assert completions >= length
        assert completions <= length + 20 * (length // rcb + 2)
        # Requests scale with the read size / MRRS.
        assert requests == 24 * max(1, -(-length // mrr))

    @given(length=st.integers(1, 1 << 16), mps=st.sampled_from([128, 256]))
    @settings(max_examples=100, deadline=None)
    def test_write_efficiency_improves_with_size(self, length, mps):
        wire = write_wire_bytes(length, mps)
        assert wire >= length + 24  # at least one TLP's overhead
        assert wire <= length + 24 * (length // mps + 1)


class TestFabricProperties:
    @given(data=st.binary(min_size=1, max_size=2048),
           offset=st.integers(0, 1 << 14))
    @settings(max_examples=40, deadline=None)
    def test_write_read_identity_through_fabric(self, data, offset):
        sim = Simulator()
        fabric = PcieFabric(sim)
        initiator = MemoryRegion("initiator", 1 << 10)
        target = MemoryRegion("target", 1 << 16)
        fabric.attach(initiator)
        fabric.attach(target)
        fabric.map_window(0x0, 1 << 16, target)
        result = {}

        def proc(sim):
            yield fabric.post_write(initiator, offset, data)
            readback = yield fabric.read(initiator, offset, len(data))
            result["data"] = readback

        sim.spawn(proc(sim))
        sim.run()
        assert result["data"] == data

    @given(sizes=st.lists(st.integers(1, 512), min_size=1, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_reads_complete_in_issue_order_per_initiator(self, sizes):
        sim = Simulator()
        fabric = PcieFabric(sim)
        initiator = MemoryRegion("initiator", 16)
        target = MemoryRegion("target", 1 << 16)
        fabric.attach(initiator)
        fabric.attach(target)
        fabric.map_window(0x0, 1 << 16, target)
        order = []

        def reader(sim, index, size):
            yield fabric.read(initiator, 0, size)
            order.append(index)

        for index, size in enumerate(sizes):
            sim.spawn(reader(sim, index, size))
        sim.run()
        assert len(order) == len(sizes)
        # Same-size reads issued together complete in order; globally
        # every read completes exactly once.
        assert sorted(order) == list(range(len(sizes)))


class TestEngineProperties:
    @given(delays=st.lists(st.floats(0, 1e-3), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_events_fire_in_nondecreasing_time_order(self, delays):
        sim = Simulator()
        fired = []
        for delay in delays:
            sim.schedule(delay, lambda d=delay: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(items=st.lists(st.integers(), max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_store_is_fifo(self, items):
        sim = Simulator()
        store = Store(sim)
        got = []

        def consumer(sim):
            for _ in items:
                value = yield store.get()
                got.append(value)

        for item in items:
            store.try_put(item)
        sim.spawn(consumer(sim))
        sim.run()
        assert got == items

    @given(messages=st.lists(st.integers(1, 10_000), min_size=1,
                             max_size=40),
           rate=st.floats(1e3, 1e9))
    @settings(max_examples=50, deadline=None)
    def test_link_conserves_and_orders_messages(self, messages, rate):
        sim = Simulator()
        link = Link(sim, rate_bps=rate)
        received = []
        link.connect(received.append)
        for index, bits in enumerate(messages):
            link.send(index, bits)
        sim.run()
        assert received == list(range(len(messages)))
        # Total busy time equals total serialization time.
        assert link.busy_until * rate == sum(messages) or abs(
            link.busy_until - sum(messages) / rate) < 1e-9
