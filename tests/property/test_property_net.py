"""Property-based tests for the packet library."""

from hypothesis import assume, given, settings, strategies as st

from repro.accelerators.iot import CoapMessage, sign_token, verify_token
from repro.accelerators.zuc import Zuc, eea3_decrypt, eea3_encrypt, eia3_mac
from repro.net import (
    Flow,
    Ipv4,
    PROTO_TCP,
    PROTO_UDP,
    Reassembler,
    fragment_packet,
    internet_checksum,
    parse_frame,
)

ips = st.integers(1, (1 << 32) - 2)
ports = st.integers(1, 65535)


def make_flow(src_ip, dst_ip, sport, dport, proto):
    return Flow("02:00:00:00:00:01", "02:00:00:00:00:02",
                src_ip, dst_ip, sport, dport, proto)


class TestChecksumProperties:
    @given(st.binary(max_size=512))
    @settings(max_examples=100, deadline=None)
    def test_checksum_self_verifies(self, data):
        """Appending the checksum makes the total sum verify."""
        checksum = internet_checksum(data)
        padded = data + b"\x00" if len(data) % 2 else data
        assert internet_checksum(padded + checksum.to_bytes(2, "big")) == 0

    @given(st.binary(min_size=2, max_size=256), st.integers(0, 7))
    @settings(max_examples=100, deadline=None)
    def test_corruption_detected(self, data, bit):
        assume(len(data) % 2 == 0)
        checksum = internet_checksum(data)
        corrupted = bytearray(data)
        corrupted[0] ^= 1 << bit
        assert internet_checksum(bytes(corrupted)) != checksum


class TestFrameProperties:
    @given(src=ips, dst=ips, sport=ports, dport=ports,
           proto=st.sampled_from([PROTO_TCP, PROTO_UDP]),
           payload=st.binary(max_size=1400))
    @settings(max_examples=100, deadline=None)
    def test_serialize_parse_roundtrip(self, src, dst, sport, dport,
                                       proto, payload):
        flow = make_flow(src, dst, sport, dport, proto)
        packet = flow.make_packet(payload)
        again = parse_frame(packet.to_bytes())
        assert again.to_bytes() == packet.to_bytes()
        assert again.payload == payload

    @given(payload_size=st.integers(100, 8000),
           mtu=st.integers(576, 1500), seed=st.integers(0, 1000))
    @settings(max_examples=60, deadline=None)
    def test_fragment_reassemble_identity(self, payload_size, mtu, seed):
        import random
        rng = random.Random(seed)
        payload = bytes(rng.randrange(256) for _ in range(payload_size))
        flow = make_flow("10.0.0.1", "10.0.0.2", 1000, 2000, PROTO_UDP)
        packet = flow.make_packet(payload)
        original_inner = packet.headers[-1].pack() + payload
        fragments = fragment_packet(packet, mtu)
        assume(len(fragments) > 1)  # actually fragmented
        rng.shuffle(fragments)
        reassembler = Reassembler()
        whole = None
        for fragment in fragments:
            result = reassembler.add(fragment)
            whole = result or whole
        assert whole is not None
        assert whole.payload == original_inner

    @given(payload_size=st.integers(100, 4000), mtu=st.integers(576, 1500))
    @settings(max_examples=60, deadline=None)
    def test_fragments_respect_mtu_and_cover_payload(self, payload_size,
                                                     mtu):
        flow = make_flow("10.0.0.1", "10.0.0.2", 1, 2, PROTO_UDP)
        packet = flow.make_packet(bytes(payload_size))
        fragments = fragment_packet(packet, mtu)
        assume(len(fragments) > 1)  # actually fragmented
        total = sum(len(f.payload) for f in fragments)
        assert total == payload_size + 8  # + UDP header in fragment data
        for fragment in fragments:
            ip = fragment.find(Ipv4)
            assert ip.HEADER_LEN + len(fragment.payload) <= mtu


class TestZucProperties:
    keys = st.binary(min_size=16, max_size=16)

    @given(key=keys, count=st.integers(0, 0xFFFFFFFF),
           bearer=st.integers(0, 31), direction=st.integers(0, 1),
           message=st.binary(min_size=1, max_size=2048))
    @settings(max_examples=60, deadline=None)
    def test_encrypt_decrypt_identity(self, key, count, bearer, direction,
                                      message):
        ciphertext = eea3_encrypt(key, count, bearer, direction, message)
        assert eea3_decrypt(key, count, bearer, direction,
                            ciphertext) == message

    @given(key=keys, iv=st.binary(min_size=16, max_size=16),
           words=st.integers(1, 64))
    @settings(max_examples=60, deadline=None)
    def test_keystream_deterministic_and_32bit(self, key, iv, words):
        a = Zuc(key, iv).keystream(words)
        b = Zuc(key, iv).keystream(words)
        assert a == b
        assert all(0 <= w < (1 << 32) for w in a)

    @given(key=keys, message=st.binary(min_size=1, max_size=512))
    @settings(max_examples=60, deadline=None)
    def test_mac_detects_single_byte_change(self, key, message):
        mac = eia3_mac(key, 0, 0, 0, message)
        tampered = bytearray(message)
        tampered[0] ^= 0x01
        assert eia3_mac(key, 0, 0, 0, bytes(tampered)) != mac


class TestCoapJwtProperties:
    @given(code=st.integers(0, 255), mid=st.integers(0, 0xFFFF),
           token=st.binary(max_size=8), payload=st.binary(max_size=512),
           options=st.lists(
               st.tuples(st.integers(0, 2000), st.binary(max_size=64)),
               max_size=5))
    @settings(max_examples=80, deadline=None)
    def test_coap_roundtrip(self, code, mid, token, payload, options):
        message = CoapMessage(code=code, message_id=mid, token=token,
                              options=options, payload=payload)
        again = CoapMessage.unpack(message.pack())
        assert again.code == code
        assert again.message_id == mid
        assert again.token == token
        assert again.payload == payload
        assert sorted(again.options) == sorted(options)

    @given(claims=st.dictionaries(
        st.text(min_size=1, max_size=10),
        st.one_of(st.integers(), st.text(max_size=20)), max_size=5),
        key=st.binary(min_size=1, max_size=64))
    @settings(max_examples=60, deadline=None)
    def test_jwt_sign_verify_roundtrip(self, claims, key):
        token = sign_token(claims, key)
        assert verify_token(token, key) == claims
        assert verify_token(token, key + b"x") is None
