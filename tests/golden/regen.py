"""Regenerate the golden fixtures after an intentional model change.

Usage::

    PYTHONPATH=src python tests/golden/regen.py [case ...]

With no arguments every case is rewritten.  Review the diff before
committing — a fixture change IS a results change.
"""

from __future__ import annotations

import sys


def main(argv) -> int:
    from tests.golden.cases import CASES, canonical, fixture_path

    names = argv or sorted(CASES)
    unknown = [n for n in names if n not in CASES]
    if unknown:
        print(f"unknown case(s): {', '.join(unknown)}; "
              f"available: {', '.join(sorted(CASES))}")
        return 2
    for name in names:
        text = canonical(CASES[name]())
        with open(fixture_path(name), "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"wrote {fixture_path(name)} ({len(text)} bytes)")
    return 0


if __name__ == "__main__":
    sys.path.insert(0, ".")
    raise SystemExit(main(sys.argv[1:]))
