"""Golden-value regression tests.

Each committed fixture under ``tests/golden/`` is the canonical JSON of
one table/figure.  The assertion is *exact textual match* — not
approximate — because the sweep runner's content-addressed seeding
makes even the simulated cases bit-reproducible.  A failure here means
the reproduction's numbers moved: either fix the regression or, for an
intentional model change, regenerate with::

    PYTHONPATH=src python tests/golden/regen.py

and review the fixture diff like any other results change.
"""

import os

import pytest

from .cases import CASES, canonical, fixture_path


@pytest.mark.parametrize("name", sorted(CASES))
def test_golden(name):
    path = fixture_path(name)
    assert os.path.exists(path), (
        f"missing fixture {path}; generate it with "
        f"'PYTHONPATH=src python tests/golden/regen.py {name}'")
    with open(path, encoding="utf-8") as fh:
        expected = fh.read()
    actual = canonical(CASES[name]())
    assert actual == expected, (
        f"golden mismatch for {name}: the reproduction's numbers "
        f"changed. If intentional, regenerate via "
        f"'PYTHONPATH=src python tests/golden/regen.py {name}' and "
        f"commit the fixture diff.")
