"""The golden-snapshot cases: what gets frozen, and how to compute it.

Every case runs through :func:`repro.sweep.run_sweep` so the
content-addressed seeding applies — that is what makes "exact match
against a committed fixture" a meaningful assertion for the simulated
cases (Table 6) and not just for the analytic ones (Tables 2/3,
Figs. 4/7a).

Regenerate fixtures after an intentional model change with::

    PYTHONPATH=src python tests/golden/regen.py
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict

from repro.sweep import SweepPoint, run_sweep

FIXTURE_DIR = os.path.dirname(os.path.abspath(__file__))

#: Keep the simulated case small: golden tests run in tier-1.
TABLE6_COUNT = 400


def _single(experiment: str, target: str) -> Any:
    return run_sweep([SweepPoint(experiment, target)]).rows[0]


def _table6() -> Any:
    from repro.experiments.echo import table6_points
    return run_sweep(table6_points(count=TABLE6_COUNT)).rows


CASES: Dict[str, Any] = {
    "table2a": lambda: _single("table2",
                               "repro.models.memory:table2a"),
    "table3": lambda: _single("table3", "repro.models.memory:table3"),
    "table6": _table6,
    "fig4_bandwidth": lambda: _single(
        "fig4", "repro.models.memory:figure4_bandwidth_sweep"),
    "fig4_queues": lambda: _single(
        "fig4", "repro.models.memory:figure4_queue_sweep"),
    "fig7a": lambda: _single("fig7a", "repro.models.perf:figure7a"),
}


def canonical(value: Any) -> str:
    """The byte-exact form fixtures are stored and compared in."""
    return json.dumps(value, sort_keys=True, indent=2,
                      allow_nan=False) + "\n"


def fixture_path(name: str) -> str:
    return os.path.join(FIXTURE_DIR, f"{name}.json")
