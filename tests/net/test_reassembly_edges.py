"""Reassembly edge cases: overlaps, duplicates, pathological fragments.

Documents the reassembler's behaviour for inputs an attacker or a broken
middlebox could produce — the situations a hardware defragmentation
engine must survive without wedging.
"""

import pytest

from repro.net import (
    Flow,
    Ipv4,
    PROTO_UDP,
    Reassembler,
    fragment_packet,
)


def packet(payload_size=3000, ident=None):
    flow = Flow("02:00:00:00:00:01", "02:00:00:00:00:02",
                "10.0.0.1", "10.0.0.2", 1000, 2000, proto=PROTO_UDP)
    result = flow.make_packet(
        (bytes(range(256)) * ((payload_size // 256) + 1))[:payload_size])
    if ident is not None:
        result.find(Ipv4).ident = ident
    return result


class TestReassemblyEdges:
    def test_duplicate_fragment_is_idempotent(self):
        fragments = fragment_packet(packet(2900), mtu=1500)
        reassembler = Reassembler()
        reassembler.add(fragments[0])
        reassembler.add(fragments[0])  # duplicate
        whole = reassembler.add(fragments[1])
        assert whole is not None
        assert reassembler.stats_reassembled == 1

    def test_overlapping_fragment_last_writer_wins(self):
        """Overlaps resolve deterministically (later data overwrites),
        so the engine can never emit a datagram with holes."""
        fragments = fragment_packet(packet(2900), mtu=1500)
        reassembler = Reassembler()
        reassembler.add(fragments[0])
        # Re-deliver fragment 0 with altered content before finishing.
        altered = fragments[0].copy()
        altered.payload = b"\xff" * len(altered.payload)
        reassembler.add(altered)
        whole = reassembler.add(fragments[1])
        assert whole is not None
        assert whole.payload[:len(altered.payload)] == altered.payload

    def test_same_ident_different_protocols_do_not_mix(self):
        from repro.net import PROTO_TCP
        a = packet(3000, ident=7)
        b_flow = Flow("02:00:00:00:00:01", "02:00:00:00:00:02",
                      "10.0.0.1", "10.0.0.2", 1000, 2000, proto=PROTO_TCP)
        b = b_flow.make_packet(bytes(3000))
        b.find(Ipv4).ident = 7
        reassembler = Reassembler()
        for frag in fragment_packet(a, 1500)[:-1]:
            assert reassembler.add(frag) is None
        whole = None
        for frag in fragment_packet(b, 1500):
            whole = reassembler.add(frag) or whole
        assert whole is not None
        assert whole.find(Ipv4).proto == PROTO_TCP
        assert len(reassembler) == 1  # datagram `a` still pending

    def test_tiny_final_fragment(self):
        """A datagram whose tail fragment is a few bytes reassembles."""
        # 1480 payload fits the first fragment; 9 spill into the last.
        result = packet(1480 + 9 - 8)
        fragments = fragment_packet(result, mtu=1500)
        assert len(fragments) == 2
        assert len(fragments[1].payload) < 16
        reassembler = Reassembler()
        whole = None
        for frag in fragments:
            whole = reassembler.add(frag) or whole
        assert whole is not None

    def test_many_concurrent_datagrams(self):
        reassembler = Reassembler(capacity=512, timeout=10_000.0)
        pending = []
        for i in range(200):
            fragments = fragment_packet(packet(2900, ident=i), 1500)
            reassembler.add(fragments[0], now=float(i))
            pending.append(fragments[1])
        assert len(reassembler) == 200
        completed = 0
        for frag in pending:
            if reassembler.add(frag, now=300.0) is not None:
                completed += 1
        assert completed == 200
        assert len(reassembler) == 0

    def test_stats_track_lifecycle(self):
        reassembler = Reassembler(timeout=1.0, capacity=2)
        # One completed...
        whole = None
        for frag in fragment_packet(packet(3000, ident=1), 1500):
            whole = reassembler.add(frag, now=0.0) or whole
        assert whole is not None
        # ...two partials exceeding capacity -> eviction...
        for ident in (2, 3, 4):
            reassembler.add(
                fragment_packet(packet(3000, ident=ident), 1500)[0],
                now=0.5)
        assert reassembler.stats_evicted >= 1
        # ...and the rest expiring.
        reassembler.add(
            fragment_packet(packet(3000, ident=9), 1500)[0], now=100.0)
        assert reassembler.stats_expired >= 1
        assert reassembler.stats_reassembled == 1
