"""Unit tests for VXLAN, RSS and RoCE framing."""

import pytest

from repro.net import (
    Bth,
    DEFAULT_RSS_KEY,
    Flow,
    Ipv4,
    PROTO_TCP,
    PROTO_UDP,
    Reth,
    RssEngine,
    Udp,
    VXLAN_PORT,
    Vxlan,
    fragment_packet,
    send_opcode,
    toeplitz_hash,
    vxlan_decapsulate,
    vxlan_encapsulate,
    write_opcode,
)
from repro.net.roce import (
    Aeth,
    OP_SEND_FIRST,
    OP_SEND_LAST,
    OP_SEND_MIDDLE,
    OP_SEND_ONLY,
    OP_RDMA_WRITE_ONLY,
)


def inner_frame(payload=b"x" * 100, proto=PROTO_TCP):
    flow = Flow("02:00:00:00:00:01", "02:00:00:00:00:02",
                "192.168.0.1", "192.168.0.2", 1234, 5678, proto=proto)
    return flow.make_packet(payload)


class TestVxlan:
    def test_header_roundtrip(self):
        header = Vxlan(vni=0xABCDE)
        again = Vxlan.unpack(header.pack())
        assert again.vni == 0xABCDE
        assert again.flags == header.flags

    def test_vni_range_checked(self):
        with pytest.raises(ValueError):
            Vxlan(1 << 24)

    def test_encap_decap_roundtrip(self):
        inner = inner_frame()
        outer = vxlan_encapsulate(
            inner, vni=42,
            outer_src_mac="02:aa:00:00:00:01", outer_dst_mac="02:aa:00:00:00:02",
            outer_src_ip="172.16.0.1", outer_dst_ip="172.16.0.2",
        )
        assert outer.find(Vxlan).vni == 42
        assert outer.find(Udp).dst_port == VXLAN_PORT
        # Overhead: 14 (eth) + 20 (ip) + 8 (udp) + 8 (vxlan) = 50 bytes.
        assert outer.size() == inner.size() + 50

        decapped = vxlan_decapsulate(outer)
        assert decapped.meta["vxlan_vni"] == 42
        assert decapped.size() == inner.size()
        assert decapped.payload == inner.payload

    def test_decap_of_plain_packet_raises(self):
        with pytest.raises(ValueError):
            vxlan_decapsulate(inner_frame())

    def test_outer_udp_length_consistent(self):
        inner = inner_frame()
        outer = vxlan_encapsulate(
            inner, 7, "02:aa:00:00:00:01", "02:aa:00:00:00:02",
            "172.16.0.1", "172.16.0.2",
        )
        udp = outer.find(Udp)
        assert udp.length == 8 + 8 + inner.size()


class TestToeplitz:
    def test_known_vector(self):
        """Microsoft RSS verification vector: 66.9.149.187:2794 ->
        161.142.100.80:1766 hashes to 0x51ccc178."""
        import struct
        data = (bytes([66, 9, 149, 187]) + bytes([161, 142, 100, 80])
                + struct.pack("!HH", 2794, 1766))
        assert toeplitz_hash(data, DEFAULT_RSS_KEY) == 0x51CCC178

    def test_known_vector_2tuple(self):
        """2-tuple variant of the Microsoft vector: 0x323e8fc2."""
        data = bytes([66, 9, 149, 187]) + bytes([161, 142, 100, 80])
        assert toeplitz_hash(data, DEFAULT_RSS_KEY) == 0x323E8FC2

    def test_deterministic(self):
        data = bytes(range(12))
        assert toeplitz_hash(data) == toeplitz_hash(data)

    def test_key_too_short_rejected(self):
        with pytest.raises(ValueError):
            toeplitz_hash(bytes(12), key=bytes(8))


class TestRssEngine:
    def test_flows_spread_across_queues(self):
        engine = RssEngine(queues=list(range(8)))
        from repro.net import make_flows
        queues = set()
        for flow in make_flows(64, seed=1):
            packet = flow.make_packet(b"x", fill_checksums=False)
            queues.add(engine.queue_for(packet))
        assert len(queues) >= 6  # good spread over 8 queues

    def test_same_flow_same_queue(self):
        engine = RssEngine(queues=list(range(8)))
        flow = inner_frame().meta["flow"]
        packets = [inner_frame() for _ in range(5)]
        assert len({engine.queue_for(p) for p in packets}) == 1

    def test_fragments_collapse_to_2tuple(self):
        """All fragments of flows sharing src/dst IPs land on ONE queue."""
        engine = RssEngine(queues=list(range(16)))
        queues = set()
        for port in range(100):
            flow = Flow("02:00:00:00:00:01", "02:00:00:00:00:02",
                        "10.0.0.1", "10.0.0.2", 10000 + port, 5201,
                        proto=PROTO_TCP)
            packet = flow.make_packet(bytes(2000))
            for frag in fragment_packet(packet, mtu=1450):
                queues.add(engine.queue_for(frag))
        assert len(queues) == 1
        assert engine.stats_no_ports > 0

    def test_requires_queues(self):
        with pytest.raises(ValueError):
            RssEngine(queues=[])


class TestRoce:
    def test_bth_roundtrip(self):
        bth = Bth(OP_SEND_ONLY, dest_qp=0x1234, psn=77, ack_request=True)
        again = Bth.unpack(bth.pack())
        assert again.opcode == OP_SEND_ONLY
        assert again.dest_qp == 0x1234
        assert again.psn == 77
        assert again.ack_request

    def test_opcode_classification(self):
        assert Bth(OP_SEND_ONLY, 0, 0).is_send
        assert Bth(OP_SEND_ONLY, 0, 0).is_first
        assert Bth(OP_SEND_ONLY, 0, 0).is_last
        assert Bth(OP_SEND_MIDDLE, 0, 0).is_send
        assert not Bth(OP_SEND_MIDDLE, 0, 0).is_first
        assert Bth(OP_RDMA_WRITE_ONLY, 0, 0).is_write

    def test_send_opcode_selection(self):
        assert send_opcode(True, True) == OP_SEND_ONLY
        assert send_opcode(True, False) == OP_SEND_FIRST
        assert send_opcode(False, False) == OP_SEND_MIDDLE
        assert send_opcode(False, True) == OP_SEND_LAST

    def test_write_opcode_selection(self):
        assert write_opcode(True, True) == OP_RDMA_WRITE_ONLY

    def test_aeth_roundtrip(self):
        aeth = Aeth(msn=12345, syndrome=3)
        again = Aeth.unpack(aeth.pack())
        assert again.msn == 12345 and again.syndrome == 3

    def test_reth_roundtrip(self):
        reth = Reth(virtual_address=0xDEADBEEF, rkey=7, length=4096)
        again = Reth.unpack(reth.pack())
        assert (again.virtual_address, again.rkey, again.length) == (
            0xDEADBEEF, 7, 4096)
