"""Unit tests for protocol headers and addresses."""

import pytest

from repro.net import (
    Ethernet,
    IpAddress,
    Ipv4,
    MacAddress,
    PROTO_TCP,
    PROTO_UDP,
    Packet,
    Tcp,
    Udp,
    internet_checksum,
    verify_checksum,
)


class TestMacAddress:
    def test_string_roundtrip(self):
        mac = MacAddress("02:aa:bb:cc:dd:ee")
        assert str(mac) == "02:aa:bb:cc:dd:ee"

    def test_bytes_roundtrip(self):
        mac = MacAddress("02:aa:bb:cc:dd:ee")
        assert MacAddress(mac.pack()) == mac

    def test_int_construction(self):
        assert str(MacAddress(1)) == "00:00:00:00:00:01"

    def test_invalid_string_rejected(self):
        with pytest.raises(ValueError):
            MacAddress("not-a-mac")

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            MacAddress(1 << 48)

    def test_hashable(self):
        assert len({MacAddress(1), MacAddress(1), MacAddress(2)}) == 2


class TestIpAddress:
    def test_string_roundtrip(self):
        ip = IpAddress("192.168.1.10")
        assert str(ip) == "192.168.1.10"

    def test_bytes_roundtrip(self):
        ip = IpAddress("10.0.0.1")
        assert IpAddress(ip.pack()) == ip

    def test_int_value(self):
        assert IpAddress("0.0.0.255").value == 255

    def test_bad_octet_rejected(self):
        with pytest.raises(ValueError):
            IpAddress("1.2.3.999")


class TestChecksum:
    def test_rfc1071_example(self):
        # Canonical example from RFC 1071 materials.
        data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
        assert internet_checksum(data) == 0x220D

    def test_verify_of_packed_header(self):
        ip = Ipv4("1.2.3.4", "5.6.7.8").finalize(100)
        assert verify_checksum(ip.pack())

    def test_odd_length_padded(self):
        assert internet_checksum(b"\x01") == internet_checksum(b"\x01\x00")


class TestEthernet:
    def test_pack_unpack_roundtrip(self):
        eth = Ethernet("02:00:00:00:00:01", "02:00:00:00:00:02", 0x0800)
        again = Ethernet.unpack(eth.pack())
        assert again.src == eth.src
        assert again.dst == eth.dst
        assert again.ethertype == 0x0800

    def test_size_is_14(self):
        assert Ethernet("02:00:00:00:00:01", "02:00:00:00:00:02").size() == 14

    def test_truncated_rejected(self):
        with pytest.raises(ValueError):
            Ethernet.unpack(b"\x00" * 10)


class TestIpv4:
    def test_pack_unpack_roundtrip(self):
        ip = Ipv4("10.0.0.1", "10.0.0.2", proto=PROTO_TCP, ttl=17,
                  ident=0x1234, flags=1, frag_offset=10).finalize(64)
        again = Ipv4.unpack(ip.pack())
        assert again.src == ip.src and again.dst == ip.dst
        assert again.proto == PROTO_TCP
        assert again.ttl == 17
        assert again.ident == 0x1234
        assert again.more_fragments
        assert again.frag_offset == 10
        assert again.total_length == 84

    def test_fragment_flags(self):
        whole = Ipv4("1.1.1.1", "2.2.2.2")
        assert not whole.is_fragment
        mf = Ipv4("1.1.1.1", "2.2.2.2", flags=1)
        assert mf.is_fragment and mf.more_fragments
        tail = Ipv4("1.1.1.1", "2.2.2.2", frag_offset=100)
        assert tail.is_fragment and not tail.more_fragments

    def test_flow_key_identifies_datagram(self):
        a = Ipv4("1.1.1.1", "2.2.2.2", ident=7)
        b = Ipv4("1.1.1.1", "2.2.2.2", ident=7, frag_offset=10)
        c = Ipv4("1.1.1.1", "2.2.2.2", ident=8)
        assert a.flow_key() == b.flow_key() != c.flow_key()

    def test_non_v4_rejected(self):
        with pytest.raises(ValueError):
            Ipv4.unpack(b"\x60" + b"\x00" * 19)


class TestUdp:
    def test_checksum_roundtrip(self):
        src, dst = IpAddress("10.0.0.1"), IpAddress("10.0.0.2")
        udp = Udp(1111, 2222).fill_checksum(src, dst, b"hello world")
        assert udp.verify(src, dst, b"hello world")
        assert not udp.verify(src, dst, b"hello worlD")

    def test_zero_checksum_means_disabled(self):
        src, dst = IpAddress("1.1.1.1"), IpAddress("2.2.2.2")
        udp = Udp(1, 2).finalize(4)
        assert udp.verify(src, dst, b"data")

    def test_finalize_sets_length(self):
        assert Udp(1, 2).finalize(100).length == 108


class TestTcp:
    def test_checksum_roundtrip(self):
        src, dst = IpAddress("10.0.0.1"), IpAddress("10.0.0.2")
        tcp = Tcp(80, 443, seq=1000).fill_checksum(src, dst, b"payload")
        assert tcp.verify(src, dst, b"payload")
        assert not tcp.verify(src, dst, b"Payload")

    def test_pack_unpack_roundtrip(self):
        tcp = Tcp(80, 443, seq=12345, ack=999, window=1024)
        again = Tcp.unpack(tcp.pack())
        assert (again.src_port, again.dst_port) == (80, 443)
        assert again.seq == 12345 and again.ack == 999
        assert again.window == 1024


class TestPacket:
    def _frame(self):
        packet = Packet()
        packet.append(Ethernet("02:00:00:00:00:01", "02:00:00:00:00:02"))
        packet.append(Ipv4("10.0.0.1", "10.0.0.2").finalize(8 + 4))
        packet.append(Udp(1, 2).finalize(4))
        packet.payload = b"abcd"
        return packet

    def test_size_accounting(self):
        packet = self._frame()
        assert packet.size() == 14 + 20 + 8 + 4
        assert packet.wire_size() == packet.size() + 24
        assert len(packet.to_bytes()) == packet.size()

    def test_push_pop_encapsulation(self):
        packet = self._frame()
        eth = packet.pop()
        assert isinstance(eth, Ethernet)
        assert isinstance(packet.headers[0], Ipv4)
        packet.push(eth)
        assert isinstance(packet.headers[0], Ethernet)

    def test_find_by_type(self):
        packet = self._frame()
        assert isinstance(packet.find(Udp), Udp)
        assert packet.find(Tcp) is None

    def test_copy_is_independent(self):
        packet = self._frame()
        clone = packet.copy()
        clone.find(Ipv4).ttl = 1
        clone.meta["x"] = 1
        assert packet.find(Ipv4).ttl != 1
        assert "x" not in packet.meta

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            Packet().pop()
