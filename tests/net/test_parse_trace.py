"""Unit tests for the frame parser and trace generators."""

import pytest

from repro.net import (
    Bth,
    Flow,
    ImcDatacenterSizes,
    Ipv4,
    PROTO_TCP,
    PROTO_UDP,
    PacketSizeDistribution,
    Tcp,
    Udp,
    UniformSizes,
    Vxlan,
    fragment_packet,
    parse_frame,
    vxlan_encapsulate,
)
from repro.net.parse import ParseError
from repro.net.roce import Aeth, OP_ACK, OP_SEND_ONLY


def frame(proto=PROTO_UDP, payload=b"data"):
    flow = Flow("02:00:00:00:00:01", "02:00:00:00:00:02",
                "10.0.0.1", "10.0.0.2", 1111, 2222, proto)
    return flow.make_packet(payload)


class TestParseFrame:
    def test_udp_frame(self):
        packet = parse_frame(frame(PROTO_UDP).to_bytes())
        assert isinstance(packet.find(Udp), Udp)
        assert packet.payload == b"data"

    def test_tcp_frame(self):
        packet = parse_frame(frame(PROTO_TCP).to_bytes())
        assert isinstance(packet.find(Tcp), Tcp)

    def test_vxlan_recursion(self):
        inner = frame()
        outer = vxlan_encapsulate(inner, 33, "02:aa:00:00:00:01",
                                  "02:aa:00:00:00:02", "1.1.1.1",
                                  "2.2.2.2")
        packet = parse_frame(outer.to_bytes())
        assert packet.find(Vxlan).vni == 33
        # The inner UDP header is parsed too (two UDP layers).
        assert len(packet.find_all(Udp)) == 2
        assert len(packet.find_all(Ipv4)) == 2

    def test_fragment_stops_at_ip(self):
        whole = frame(PROTO_TCP, payload=bytes(3000))
        tail = fragment_packet(whole, 1500)[1]
        packet = parse_frame(tail.to_bytes())
        assert packet.find(Tcp) is None
        assert packet.find(Ipv4).is_fragment

    def test_roce_send_frame(self):
        from repro.net import Packet, Udp as UdpH
        from repro.net.roce import ICRC_SIZE
        from repro.net import Ethernet
        bth = Bth(OP_SEND_ONLY, dest_qp=5, psn=9)
        packet = Packet(payload=b"rdma" + bytes(ICRC_SIZE))
        packet.append(bth)
        udp = UdpH(50000, 4791).finalize(12 + 4 + ICRC_SIZE)
        packet.push(udp)
        ip = Ipv4("1.1.1.1", "2.2.2.2").finalize(udp.length)
        packet.push(ip)
        packet.push(Ethernet("02:00:00:00:00:01", "02:00:00:00:00:02"))
        parsed = parse_frame(packet.to_bytes())
        found = parsed.find(Bth)
        assert found is not None and found.dest_qp == 5

    def test_roce_ack_carries_aeth(self):
        from repro.net import Packet, Ethernet
        from repro.net.roce import ICRC_SIZE
        bth = Bth(OP_ACK, dest_qp=5, psn=9)
        packet = Packet(payload=bytes(ICRC_SIZE))
        packet.append(bth)
        packet.append(Aeth(msn=3))
        udp = Udp(50000, 4791).finalize(12 + 4 + ICRC_SIZE)
        packet.push(udp)
        ip = Ipv4("1.1.1.1", "2.2.2.2").finalize(udp.length)
        packet.push(ip)
        packet.push(Ethernet("02:00:00:00:00:01", "02:00:00:00:00:02"))
        parsed = parse_frame(packet.to_bytes())
        assert parsed.find(Aeth).msn == 3

    def test_truncated_frame_rejected(self):
        with pytest.raises(ParseError):
            parse_frame(b"\x00" * 8)

    def test_non_ip_ethertype_leaves_payload_raw(self):
        from repro.net import Ethernet, Packet
        packet = Packet(payload=b"arp-ish")
        packet.push(Ethernet("02:00:00:00:00:01", "02:00:00:00:00:02",
                             0x0806))
        parsed = parse_frame(packet.to_bytes())
        assert parsed.payload == b"arp-ish"
        assert parsed.find(Ipv4) is None


class TestTraceDistributions:
    def test_mixture_normalizes_weights(self):
        dist = PacketSizeDistribution([(64, 64, 2.0), (1500, 1500, 2.0)])
        sizes = dist.sizes(1000)
        assert set(sizes) == {64, 1500}

    def test_samples_within_buckets(self):
        dist = ImcDatacenterSizes(seed=1)
        for size in dist.sizes(2000):
            assert 64 <= size <= 1500

    def test_deterministic_with_seed(self):
        assert (ImcDatacenterSizes(seed=5).sizes(100)
                == ImcDatacenterSizes(seed=5).sizes(100))

    def test_mean_matches_calibration(self):
        dist = ImcDatacenterSizes(seed=0)
        empirical = sum(dist.sizes(20000)) / 20000
        assert empirical == pytest.approx(dist.mean(), rel=0.05)

    def test_uniform_sizes(self):
        assert set(UniformSizes(700).sizes(50)) == {700}

    def test_invalid_buckets_rejected(self):
        with pytest.raises(ValueError):
            PacketSizeDistribution([])
        with pytest.raises(ValueError):
            PacketSizeDistribution([(100, 50, 1.0)])
        with pytest.raises(ValueError):
            PacketSizeDistribution([(10, 20, 1.0)])  # below min frame
        with pytest.raises(ValueError):
            PacketSizeDistribution([(64, 128, 0.0)])
