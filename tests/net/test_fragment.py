"""Unit tests for IP fragmentation and reassembly."""

import pytest

from repro.net import (
    FLAG_DF,
    Flow,
    FragmentError,
    Ipv4,
    PROTO_TCP,
    Reassembler,
    Udp,
    fragment_packet,
    parse_l4,
)


def make_packet(payload_size=3000, proto=PROTO_TCP):
    flow = Flow("02:00:00:00:00:01", "02:00:00:00:00:02",
                "10.0.0.1", "10.0.0.2", 4000, 5201, proto=proto)
    payload = (bytes(range(256)) * ((payload_size // 256) + 1))[:payload_size]
    return flow.make_packet(payload)


class TestFragmentation:
    def test_small_packet_not_fragmented(self):
        packet = make_packet(100)
        fragments = fragment_packet(packet, mtu=1500)
        assert fragments == [packet]

    def test_fragment_sizes_respect_mtu(self):
        packet = make_packet(3000)
        fragments = fragment_packet(packet, mtu=1500)
        assert len(fragments) == 3
        for frag in fragments:
            ip = frag.find(Ipv4)
            assert ip.HEADER_LEN + len(frag.payload) <= 1500

    def test_offsets_are_contiguous(self):
        packet = make_packet(3000)
        fragments = fragment_packet(packet, mtu=1500)
        expected_offset = 0
        for frag in fragments:
            ip = frag.find(Ipv4)
            assert ip.frag_offset * 8 == expected_offset
            expected_offset += len(frag.payload)

    def test_mf_flags_set_except_last(self):
        fragments = fragment_packet(make_packet(3000), mtu=1500)
        assert all(f.find(Ipv4).more_fragments for f in fragments[:-1])
        assert not fragments[-1].find(Ipv4).more_fragments

    def test_only_first_fragment_carries_l4_header(self):
        packet = make_packet(3000)
        tcp_bytes = packet.headers[-1].pack()
        fragments = fragment_packet(packet, mtu=1500)
        assert fragments[0].payload.startswith(tcp_bytes)
        assert not fragments[1].payload.startswith(tcp_bytes)

    def test_df_flag_blocks_fragmentation(self):
        packet = make_packet(3000)
        packet.find(Ipv4).flags |= FLAG_DF
        with pytest.raises(FragmentError):
            fragment_packet(packet, mtu=1500)

    def test_tiny_mtu_rejected(self):
        with pytest.raises(FragmentError):
            fragment_packet(make_packet(3000), mtu=Ipv4.HEADER_LEN + 4)

    def test_non_ip_packet_rejected(self):
        from repro.net import Packet
        with pytest.raises(FragmentError):
            fragment_packet(Packet(payload=b"x" * 2000), mtu=100)

    def test_paper_scenario_1500_over_1450(self):
        """§8.2.2(b): 1500 B packets over a 1450 B MTU -> 2 fragments."""
        flow = Flow("02:00:00:00:00:01", "02:00:00:00:00:02",
                    "10.0.0.1", "10.0.0.2", 4000, 5201, proto=PROTO_TCP)
        packet = flow.make_sized_packet(1500)
        fragments = fragment_packet(packet, mtu=1450)
        assert len(fragments) == 2


class TestReassembly:
    def test_roundtrip_preserves_payload(self):
        packet = make_packet(3000)
        original_l4 = packet.headers[-1].pack() + packet.payload
        fragments = fragment_packet(packet, mtu=1500)
        reassembler = Reassembler()
        results = [reassembler.add(f) for f in fragments]
        assert results[:-1] == [None, None]
        whole = results[-1]
        assert whole is not None
        assert whole.payload == original_l4
        assert whole.meta["reassembled"]

    def test_out_of_order_fragments(self):
        fragments = fragment_packet(make_packet(4500), mtu=1500)
        reassembler = Reassembler()
        order = [2, 0, 3, 1] if len(fragments) == 4 else list(
            reversed(range(len(fragments))))
        whole = None
        for i in order[:len(fragments)]:
            whole = reassembler.add(fragments[i]) or whole
        assert whole is not None

    def test_interleaved_datagrams(self):
        a = fragment_packet(make_packet(3000), mtu=1500)
        b = fragment_packet(make_packet(3000), mtu=1500)
        reassembler = Reassembler()
        outputs = []
        for pair in zip(a, b):
            for frag in pair:
                result = reassembler.add(frag)
                if result is not None:
                    outputs.append(result)
        assert len(outputs) == 2

    def test_missing_fragment_never_completes(self):
        fragments = fragment_packet(make_packet(4500), mtu=1500)
        reassembler = Reassembler()
        for frag in fragments[:-1]:
            assert reassembler.add(frag) is None
        assert len(reassembler) == 1

    def test_non_fragment_passes_through(self):
        packet = make_packet(100)
        reassembler = Reassembler()
        assert reassembler.add(packet) is packet

    def test_timeout_expires_partials(self):
        fragments = fragment_packet(make_packet(3000), mtu=1500)
        reassembler = Reassembler(timeout=1.0)
        reassembler.add(fragments[0], now=0.0)
        # A later unrelated fragment triggers expiry scanning.
        other = fragment_packet(make_packet(3000), mtu=1500)
        reassembler.add(other[0], now=10.0)
        assert reassembler.stats_expired == 1

    def test_capacity_evicts_oldest(self):
        reassembler = Reassembler(capacity=2)
        for i in range(3):
            packet = make_packet(3000)
            packet.find(Ipv4).ident = i
            frags = fragment_packet(packet, mtu=1500)
            reassembler.add(frags[0], now=float(i))
        assert len(reassembler) == 2
        assert reassembler.stats_evicted == 1

    def test_reassembled_l4_parses_and_checksums(self):
        flow = Flow("02:00:00:00:00:01", "02:00:00:00:00:02",
                    "10.0.0.1", "10.0.0.2", 4000, 5201, proto=PROTO_TCP)
        payload = b"\xab" * 2500
        packet = flow.make_packet(payload)
        fragments = fragment_packet(packet, mtu=1500)
        reassembler = Reassembler()
        whole = None
        for frag in fragments:
            whole = reassembler.add(frag) or whole
        l4, data = parse_l4(whole)
        assert data == payload
        ip = whole.find(Ipv4)
        assert l4.verify(ip.src, ip.dst, data)

    def test_udp_parse_l4(self):
        packet = make_packet(2000, proto=17)
        fragments = fragment_packet(packet, mtu=600)
        reassembler = Reassembler()
        whole = None
        for frag in fragments:
            whole = reassembler.add(frag) or whole
        l4, _data = parse_l4(whole)
        assert isinstance(l4, Udp)
