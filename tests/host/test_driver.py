"""Unit tests for the host software driver and CPU model."""

import pytest

from repro.host import (
    BumpAllocator,
    CpuComputeCost,
    CpuCore,
    HostMemory,
    PAGE_SIZE,
)
from repro.host.driver import QueueFullError
from repro.net import Flow
from repro.sim import Simulator
from repro.testbed import make_local_node


class TestHostMemory:
    def test_sparse_allocation(self):
        memory = HostMemory("m", size=1 << 40)  # a TiB of address space
        memory.handle_write(1 << 39, b"hello")
        assert memory.handle_read(1 << 39, 5) == b"hello"
        # Only the touched page is resident.
        assert memory.resident_bytes == PAGE_SIZE

    def test_cross_page_access(self):
        memory = HostMemory("m", size=1 << 20)
        data = bytes(range(256)) * 32  # 8 KiB spanning 3 pages
        memory.handle_write(PAGE_SIZE - 100, data)
        assert memory.handle_read(PAGE_SIZE - 100, len(data)) == data

    def test_unwritten_reads_as_zero(self):
        memory = HostMemory("m", size=1 << 20)
        assert memory.handle_read(12345, 8) == bytes(8)

    def test_bounds_enforced(self):
        from repro.pcie import PcieError
        memory = HostMemory("m", size=1024)
        with pytest.raises(PcieError):
            memory.handle_read(1020, 8)
        with pytest.raises(PcieError):
            memory.handle_write(1024, b"x")


class TestBumpAllocator:
    def test_alignment(self):
        alloc = BumpAllocator(0x1000, 0x1000)
        first = alloc.alloc(10, align=64)
        second = alloc.alloc(10, align=64)
        assert first % 64 == 0 and second % 64 == 0
        assert second >= first + 10

    def test_exhaustion(self):
        alloc = BumpAllocator(0, 128)
        alloc.alloc(100)
        with pytest.raises(MemoryError):
            alloc.alloc(100)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            BumpAllocator(0, 128).alloc(0)


class TestCpuCore:
    def test_per_packet_time(self):
        sim = Simulator()
        core = CpuCore(sim, frequency_hz=1e9, per_packet_cycles=100,
                       os_jitter_probability=0.0)
        assert core.per_packet_seconds == pytest.approx(100e-9)
        assert core.packet_cost() == pytest.approx(100e-9)

    def test_jitter_appears_at_expected_rate(self):
        sim = Simulator()
        core = CpuCore(sim, os_jitter_probability=0.1, seed=42)
        costs = [core.packet_cost() for _ in range(2000)]
        assert 100 < core.stats_jitter_events < 320
        assert max(costs) > core.per_packet_seconds * 10

    def test_compute_cost_model(self):
        sim = Simulator()
        core = CpuCore(sim, frequency_hz=2e9, os_jitter_probability=0.0)
        compute = CpuComputeCost(core, cycles_per_byte=2.0,
                                 cycles_per_call=1000)
        assert compute.seconds_for(500) == pytest.approx(1e-6)
        assert compute.throughput_bps(500) == pytest.approx(4e9)


class TestEthQueuePair:
    def _node(self):
        sim = Simulator()
        node = make_local_node(sim)
        node.add_vport_for_mac(1, "02:00:00:00:00:01")
        return sim, node

    def test_send_rejects_oversized_frame(self):
        _sim, node = self._node()
        qp = node.driver.create_eth_qp(vport=1, buffer_size=256)
        with pytest.raises(ValueError):
            qp.send(bytes(300))

    def test_send_raises_when_ring_full(self):
        _sim, node = self._node()
        qp = node.driver.create_eth_qp(vport=1, sq_entries=16)
        frame = Flow("02:00:00:00:00:01", "02:00:00:00:00:02",
                     "1.1.1.1", "2.2.2.2", 1, 2).make_packet(
                         b"x", fill_checksums=False).to_bytes()
        # Fill the ring without running the simulator (NIC never drains).
        for _ in range(16):
            qp.send(frame)
        with pytest.raises(QueueFullError):
            qp.send(frame)

    def test_selective_signalling_retires_batches(self):
        sim, node = self._node()
        node.add_vport_for_mac(2, "02:00:00:00:00:02")
        sink = node.driver.create_eth_qp(vport=2)
        sink.post_rx_buffers(64)
        qp = node.driver.create_eth_qp(vport=1, signal_interval=8)
        frame = Flow("02:00:00:00:00:01", "02:00:00:00:00:02",
                     "1.1.1.1", "2.2.2.2", 1, 2).make_packet(
                         b"x" * 64, fill_checksums=False).to_bytes()
        for _ in range(16):
            qp.send(frame)
        sim.run(until=0.01)
        assert qp.tx_cq.stats_cqes == 2  # two signalled batches of 8
        assert qp.tx_space() == qp.sq.entries

    def test_rx_buffer_recycling_sustains(self):
        sim, node = self._node()
        node.add_vport_for_mac(2, "02:00:00:00:00:02")
        sender = node.driver.create_eth_qp(vport=1)
        receiver = node.driver.create_eth_qp(vport=2, rq_entries=16)
        receiver.post_rx_buffers(16)
        flow = Flow("02:00:00:00:00:01", "02:00:00:00:00:02",
                    "1.1.1.1", "2.2.2.2", 1, 2)

        def send_many(sim):
            for _ in range(64):  # 4x the ring depth
                yield from sender.wait_for_tx_space()
                sender.send(flow.make_packet(b"y" * 100,
                                             fill_checksums=False)
                            .to_bytes())
                yield sim.timeout(2e-6)

        sim.spawn(send_many(sim))
        sim.run(until=0.01)
        assert receiver.stats_rx == 64

    def test_memory_footprint_reported(self):
        _sim, node = self._node()
        node.driver.create_eth_qp(vport=1)
        footprint = node.driver.memory_footprint()
        assert footprint["allocated"] > 0
