"""Unit tests for testpmd helpers and remaining sim utilities."""

import pytest

from repro.host import swap_directions
from repro.net import Ethernet, Flow, Ipv4, PROTO_TCP, Tcp, Udp, \
    make_flows, round_robin_packets
from repro.sim import Link, Simulator, Store, drain_store_via_link


class TestSwapDirections:
    def test_swaps_all_layers(self):
        flow = Flow("02:00:00:00:00:01", "02:00:00:00:00:02",
                    "10.0.0.1", "10.0.0.2", 1111, 2222)
        packet = swap_directions(flow.make_packet(b"x"))
        eth = packet.find(Ethernet)
        ip = packet.find(Ipv4)
        udp = packet.find(Udp)
        assert str(eth.src) == "02:00:00:00:00:02"
        assert str(eth.dst) == "02:00:00:00:00:01"
        assert str(ip.src) == "10.0.0.2" and str(ip.dst) == "10.0.0.1"
        assert (udp.src_port, udp.dst_port) == (2222, 1111)

    def test_tcp_ports_swapped(self):
        flow = Flow("02:00:00:00:00:01", "02:00:00:00:00:02",
                    "1.1.1.1", "2.2.2.2", 80, 443, proto=PROTO_TCP)
        packet = swap_directions(flow.make_packet(b"x"))
        tcp = packet.find(Tcp)
        assert (tcp.src_port, tcp.dst_port) == (443, 80)

    def test_payload_untouched(self):
        flow = Flow("02:00:00:00:00:01", "02:00:00:00:00:02",
                    "1.1.1.1", "2.2.2.2", 1, 2)
        packet = swap_directions(flow.make_packet(b"payload!"))
        assert packet.payload == b"payload!"


class TestFlowHelpers:
    def test_make_flows_distinct_tuples(self):
        flows = make_flows(50, seed=3)
        tuples = {f.tuple5() for f in flows}
        assert len(tuples) >= 45  # random ports may rarely collide

    def test_round_robin_cycles(self):
        flows = make_flows(3, seed=1)
        packets = list(round_robin_packets(flows, 100, 7))
        assert len(packets) == 7
        sources = [p.meta["flow"][2] for p in packets]
        assert sources[0] == sources[3] == sources[6]

    def test_sized_packet_exact_size(self):
        flow = make_flows(1, seed=2)[0]
        for size in (64, 128, 1500):
            assert flow.make_sized_packet(size).size() == size


class TestDrainStoreViaLink:
    def test_items_ship_in_order_at_link_rate(self):
        sim = Simulator()
        store = Store(sim)
        link = Link(sim, rate_bps=8000.0)  # 1000 bytes/s
        received = []
        link.connect(lambda item: received.append((sim.now, item)))
        sim.spawn(drain_store_via_link(sim, store, link,
                                       bits_of=lambda item: 8000))
        for i in range(3):
            store.try_put(i)
        sim.run(until=10.0)
        assert [item for _t, item in received] == [0, 1, 2]
        times = [t for t, _item in received]
        # Each item serializes for a full second.
        assert times[1] - times[0] == pytest.approx(1.0)
        assert times[2] - times[1] == pytest.approx(1.0)
