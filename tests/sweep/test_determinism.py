"""Determinism regression tests (the tentpole's core guarantee).

Serial and ``--jobs 4`` executions of real experiment sweeps must
produce byte-identical result dicts.  These run the actual simulated
stack (small counts): any nondeterminism the unit tests missed — an
unseeded RNG, worker-order-dependent accumulation, set iteration —
shows up here as a diff.
"""

import json

from repro.experiments.echo import fig7b_points
from repro.experiments.zuc import fig8a_points
from repro.sweep import run_sweep


def _dumps(rows):
    return json.dumps(rows, sort_keys=True, allow_nan=False)


def test_fig7b_serial_vs_jobs4_byte_identical():
    points = fig7b_points(sizes=[64, 512], count=120,
                          modes=["flde-remote", "cpu-remote"])
    serial = run_sweep(points, jobs=1)
    parallel = run_sweep(points, jobs=4)
    assert serial.computed == parallel.computed == len(points)
    assert _dumps(serial.rows) == _dumps(parallel.rows)


def test_zuc_serial_vs_jobs4_byte_identical():
    points = fig8a_points(sizes=[64, 256], count=80)
    serial = run_sweep(points, jobs=1)
    parallel = run_sweep(points, jobs=4)
    assert _dumps(serial.rows) == _dumps(parallel.rows)


def test_repeated_serial_runs_are_byte_identical():
    """The seeding is content-addressed, not process-lifetime state:
    running the same sweep twice in one process gives the same bytes."""
    points = fig7b_points(sizes=[64], count=120, modes=["flde-remote"])
    first = run_sweep(points, jobs=1)
    second = run_sweep(points, jobs=1)
    assert _dumps(first.rows) == _dumps(second.rows)
