"""Sweep targets for the runner/cache tests.

These must live in an importable module (not a test body) because the
runner addresses targets by dotted path and pool workers re-import
them.  Invocations are counted through a file named by the
``REPRO_TEST_COUNTER`` environment variable: an append per call works
from any worker process, so tests can assert *how many times a
simulation actually ran* regardless of ``jobs``.
"""

from __future__ import annotations

import os
import random
from typing import Dict

COUNTER_ENV = "REPRO_TEST_COUNTER"


def _bump() -> None:
    path = os.environ.get(COUNTER_ENV)
    if path:
        with open(path, "a") as fh:
            fh.write("1\n")


def invocations() -> int:
    """How many counted targets have run since the counter was set."""
    path = os.environ[COUNTER_ENV]
    try:
        with open(path) as fh:
            return sum(1 for _ in fh)
    except FileNotFoundError:
        return 0


def add(a: int, b: int) -> Dict:
    """A trivial target whose result also exposes the seeded RNG."""
    _bump()
    return {"sum": a + b, "noise": random.random()}


def echo_point(size: int, count: int = 80) -> Dict:
    """A real (tiny) simulation: runs the FLD-E echo end to end."""
    _bump()
    from repro.experiments.echo import echo_throughput
    return echo_throughput("flde-remote", size, count=count)


def boom() -> Dict:
    """A target that always fails."""
    raise RuntimeError("sweep target exploded")


def not_json() -> object:
    """A target whose result cannot be cached."""
    return object()


def with_telemetry(n: int, telemetry=None) -> Dict:
    """A target that records into the injected telemetry."""
    if telemetry is not None:
        telemetry.metrics.counter("test.calls").inc()
        hist = telemetry.metrics.histogram("test.values")
        for i in range(n):
            hist.observe(float(i))
    return {"n": n}


def with_spans(n: int, telemetry=None) -> Dict:
    """A target that records span traces into the injected telemetry."""
    if telemetry is not None:
        spans = telemetry.spans
        for i in range(n):
            ctx = spans.start_trace(f"t{i}", 0.0)
            spans.record(ctx, "wire", 0.0, 1e-6)
            spans.end_trace(ctx, 2e-6)
    return {"n": n}


def with_profile(n: int, telemetry=None) -> Dict:
    """A target that runs a tiny simulation under the event profiler."""
    from repro.sim import Simulator
    sim = Simulator(telemetry=telemetry)

    def proc(sim):
        for _ in range(n):
            yield sim.timeout(1.0)

    sim.spawn(proc(sim), name="worker")
    sim.run()
    return {"n": n}
