"""The acceptance-criterion cache tests.

The load-bearing one: a warm-cache re-run re-simulates **zero** sweep
points.  Simulator invocations are counted through a file-append
counter that works across pool worker processes, so the assertion holds
for parallel runs too, not just the in-process path.
"""

import json
import os

import pytest

from repro.sweep import CacheEntry, SweepCache, SweepPoint, run_sweep

from . import targets

ECHO = "tests.sweep.targets:echo_point"


@pytest.fixture
def counter(tmp_path, monkeypatch):
    monkeypatch.setenv(targets.COUNTER_ENV,
                       str(tmp_path / "invocations"))


def _echo_points():
    return [SweepPoint("cache-test", ECHO, {"size": size, "count": 60})
            for size in (64, 512)]


class TestWarmCache:
    def test_warm_rerun_simulates_zero_points(self, tmp_path, counter):
        cache = SweepCache(str(tmp_path / "cache"))

        cold = run_sweep(_echo_points(), jobs=1, cache=cache)
        assert targets.invocations() == 2
        assert cold.computed == 2 and cold.cache_hits == 0

        warm = run_sweep(_echo_points(), jobs=1, cache=cache)
        # Zero new simulator invocations: every point came from disk.
        assert targets.invocations() == 2
        assert warm.computed == 0 and warm.cache_hits == 2
        assert (json.dumps(warm.rows, sort_keys=True)
                == json.dumps(cold.rows, sort_keys=True))

    def test_warm_rerun_parallel_also_simulates_nothing(
            self, tmp_path, counter):
        cache = SweepCache(str(tmp_path / "cache"))
        cold = run_sweep(_echo_points(), jobs=2, cache=cache)
        invocations_after_cold = targets.invocations()
        assert invocations_after_cold == 2

        warm = run_sweep(_echo_points(), jobs=2, cache=cache)
        assert targets.invocations() == invocations_after_cold
        assert warm.computed == 0 and warm.cache_hits == 2
        assert warm.rows == cold.rows

    def test_param_change_misses(self, tmp_path, counter):
        cache = SweepCache(str(tmp_path / "cache"))
        run_sweep(_echo_points(), cache=cache)
        changed = [SweepPoint("cache-test", ECHO,
                              {"size": 64, "count": 61})]
        result = run_sweep(changed, cache=cache)
        assert result.computed == 1
        assert targets.invocations() == 3


class TestCacheStore:
    def test_entry_round_trips(self, tmp_path):
        cache = SweepCache(str(tmp_path / "cache"))
        point = SweepPoint("e", "m:f", {"a": 1})
        entry = CacheEntry(key=point.key(), experiment="e", target="m:f",
                           params={"a": 1}, seed=point.seed(),
                           result={"x": [1, 2]}, metrics=None)
        cache.store(entry)
        loaded = cache.load(point.key())
        assert loaded is not None
        assert loaded.result == {"x": [1, 2]}
        assert loaded.seed == point.seed()
        assert point.key() in cache
        assert list(cache.keys()) == [point.key()]
        assert len(cache) == 1

    def test_missing_entry_is_a_miss(self, tmp_path):
        cache = SweepCache(str(tmp_path / "cache"))
        assert cache.load("0" * 64) is None
        assert cache.stats()["misses"] == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = SweepCache(str(tmp_path / "cache"))
        point = SweepPoint("e", "m:f", {"a": 1})
        path = cache._path(point.key())
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w") as fh:
            fh.write('{"truncated')
        assert cache.load(point.key()) is None
        assert cache.stats()["corrupt"] == 1

    def test_key_mismatch_is_a_miss(self, tmp_path):
        cache = SweepCache(str(tmp_path / "cache"))
        point = SweepPoint("e", "m:f", {"a": 1})
        entry = CacheEntry(key=point.key(), experiment="e", target="m:f",
                           params={"a": 1}, seed=0, result=1)
        cache.store(entry)
        # Copy the entry to a different address: the self-describing key
        # no longer matches the file name.
        other = SweepPoint("e", "m:f", {"a": 2}).key()
        other_path = cache._path(other)
        os.makedirs(os.path.dirname(other_path), exist_ok=True)
        with open(cache._path(point.key())) as src:
            data = src.read()
        with open(other_path, "w") as dst:
            dst.write(data)
        assert cache.load(other) is None

    def test_clear_removes_everything(self, tmp_path):
        cache = SweepCache(str(tmp_path / "cache"))
        for i in range(3):
            point = SweepPoint("e", "m:f", {"a": i})
            cache.store(CacheEntry(key=point.key(), experiment="e",
                                   target="m:f", params={"a": i},
                                   seed=0, result=i))
        assert len(cache) == 3
        assert cache.clear() == 3
        assert len(cache) == 0
