"""Unit tests for the sweep runner: ordering, seeding, caching,
telemetry merging and error behavior."""

import json
import os

import pytest

from repro.sweep import (
    SweepCache,
    SweepError,
    SweepPoint,
    cache_key,
    point_seed,
    resolve_target,
    run_sweep,
    seed_payload_key,
)

from . import targets

ADD = "tests.sweep.targets:add"


@pytest.fixture
def counter(tmp_path, monkeypatch):
    path = str(tmp_path / "invocations")
    monkeypatch.setenv(targets.COUNTER_ENV, path)
    return path


def _add_points(n=6):
    return [SweepPoint("unit", ADD, {"a": i, "b": i * 10})
            for i in range(n)]


class TestRunSweep:
    def test_results_come_back_in_point_order(self, counter):
        result = run_sweep(_add_points(), jobs=1)
        assert [row["sum"] for row in result.rows] == [
            0, 11, 22, 33, 44, 55]
        assert result.computed == 6
        assert result.cache_hits == 0
        assert result.points == len(result) == 6

    def test_parallel_matches_serial_bitwise(self, counter):
        serial = run_sweep(_add_points(), jobs=1)
        parallel = run_sweep(_add_points(), jobs=4)
        assert (json.dumps(serial.rows, sort_keys=True)
                == json.dumps(parallel.rows, sort_keys=True))
        # The per-point "noise" value proves the RNG was seeded the
        # same way in the workers as in-process.
        assert all("noise" in row for row in serial.rows)

    def test_per_point_seeding_is_content_addressed(self, counter):
        point = SweepPoint("unit", ADD, {"a": 1, "b": 2})
        first = run_sweep([point], jobs=1).rows[0]
        again = run_sweep([point], jobs=1).rows[0]
        assert first == again
        other = run_sweep(
            [SweepPoint("unit", ADD, {"a": 1, "b": 3})], jobs=1).rows[0]
        assert other["noise"] != first["noise"]

    def test_sweep_result_is_sequence_like(self, counter):
        result = run_sweep(_add_points(3), jobs=1)
        assert list(result)[0] == result[0]
        assert len(result) == 3

    def test_failing_target_propagates(self):
        with pytest.raises(RuntimeError, match="exploded"):
            run_sweep([SweepPoint("unit", "tests.sweep.targets:boom")])

    def test_non_json_result_is_rejected(self):
        with pytest.raises(RuntimeError, match="round-trip"):
            run_sweep([SweepPoint("unit",
                                  "tests.sweep.targets:not_json")])

    def test_telemetry_exports_merge_across_points(self, counter):
        points = [SweepPoint("unit", "tests.sweep.targets:with_telemetry",
                             {"n": n}, telemetry=True)
                  for n in (3, 5)]
        result = run_sweep(points, jobs=1)
        assert result.metrics is not None
        exported = result.metrics.to_dict()
        assert exported["counters"]["test.calls"] == 2
        assert exported["histograms"]["test.values"]["count"] == 8

    def test_cache_round_trip(self, tmp_path, counter):
        cache = SweepCache(str(tmp_path / "cache"))
        cold = run_sweep(_add_points(), jobs=1, cache=cache)
        assert cold.computed == 6 and cold.cache_hits == 0
        warm = run_sweep(_add_points(), jobs=1, cache=cache)
        assert warm.computed == 0 and warm.cache_hits == 6
        assert warm.rows == cold.rows

    def test_cached_telemetry_merges_on_warm_runs(self, tmp_path):
        cache = SweepCache(str(tmp_path / "cache"))
        points = [SweepPoint("unit", "tests.sweep.targets:with_telemetry",
                             {"n": 4}, telemetry=True)]
        cold = run_sweep(points, cache=cache)
        warm = run_sweep(points, cache=cache)
        assert warm.computed == 0
        assert (warm.metrics.to_dict()["histograms"]["test.values"]
                == cold.metrics.to_dict()["histograms"]["test.values"])

    def test_progress_callback_sees_both_paths(self, tmp_path, counter):
        cache = SweepCache(str(tmp_path / "cache"))
        events = []
        run_sweep(_add_points(2), cache=cache, progress=events.append)
        run_sweep(_add_points(2), cache=cache, progress=events.append)
        assert sum(1 for e in events if e.startswith("computed")) == 2
        assert sum(1 for e in events if e.startswith("cache hit")) == 2


class TestPoints:
    def test_key_ignores_param_order(self):
        assert (cache_key("e", "m:f", {"a": 1, "b": 2})
                == cache_key("e", "m:f", {"b": 2, "a": 1}))

    def test_key_changes_with_params_and_version(self):
        base = cache_key("e", "m:f", {"a": 1})
        assert cache_key("e", "m:f", {"a": 2}) != base
        assert cache_key("e", "m:f", {"a": 1}, version="0.0.0") != base
        assert cache_key("other", "m:f", {"a": 1}) != base
        assert cache_key("e", "m:g", {"a": 1}) != base

    def test_seed_derives_from_frozen_payload(self):
        point = SweepPoint("e", ADD, {"a": 1})
        assert point.seed() == point_seed(
            seed_payload_key("e", ADD, {"a": 1}))
        assert 0 <= point.seed() < 2 ** 64

    def test_topology_readdresses_cache_but_never_reseeds(self):
        plain = SweepPoint("e", ADD, {"a": 1})
        shaped = SweepPoint("e", ADD, {"a": 1},
                            topology={"nodes": [{"name": "n0"}]})
        other = SweepPoint("e", ADD, {"a": 1},
                           topology={"nodes": [{"name": "n1"}]})
        assert shaped.key() != plain.key()
        assert shaped.key() != other.key()
        # The seed defines the simulated bytes; it is frozen at the
        # schema-2 payload so golden fixtures survive schema bumps.
        assert shaped.seed() == plain.seed() == other.seed()

    def test_non_json_params_are_rejected(self):
        with pytest.raises(SweepError, match="JSON"):
            cache_key("e", "m:f", {"bad": object()})

    def test_resolve_target_validates(self):
        assert resolve_target(ADD) is targets.add
        with pytest.raises(SweepError, match="look like"):
            resolve_target("no-colon")
        with pytest.raises(SweepError, match="cannot import"):
            resolve_target("no.such.module:f")
        with pytest.raises(SweepError, match="callable"):
            resolve_target("tests.sweep.targets:COUNTER_ENV")

    def test_label_is_stable(self):
        point = SweepPoint("fig", ADD, {"b": 2, "a": 1})
        assert point.label() == "fig(a=1, b=2)"


class TestSpansTelemetryMode:
    def test_spans_mode_exports_stage_histograms(self):
        points = [SweepPoint("unit", "tests.sweep.targets:with_spans",
                             {"n": 3}, telemetry="spans")]
        outcome = run_sweep(points)
        hist = outcome.metrics.histogram("spans.stage.wire.service")
        assert hist.count == 3
        assert outcome.metrics.histogram("spans.e2e").count == 3

    def test_plain_telemetry_mode_records_no_spans(self):
        points = [SweepPoint("unit", "tests.sweep.targets:with_spans",
                             {"n": 3}, telemetry=True)]
        outcome = run_sweep(points)
        assert "spans.e2e" not in outcome.metrics

    def test_telemetry_mode_is_part_of_the_cache_key(self):
        plain = SweepPoint("e", "m:f", {"x": 1})
        metrics = SweepPoint("e", "m:f", {"x": 1}, telemetry=True)
        spans = SweepPoint("e", "m:f", {"x": 1}, telemetry="spans")
        profile = SweepPoint("e", "m:f", {"x": 1}, telemetry="profile")
        assert len({plain.key(), metrics.key(), spans.key(),
                    profile.key()}) == 4

    def test_spans_mode_merges_from_warm_cache(self, tmp_path):
        cache = SweepCache(str(tmp_path))
        points = [SweepPoint("unit", "tests.sweep.targets:with_spans",
                             {"n": 4}, telemetry="spans")]
        cold = run_sweep(points, cache=cache)
        warm = run_sweep(points, cache=cache)
        assert warm.computed == 0 and warm.cache_hits == 1
        for outcome in (cold, warm):
            hist = outcome.metrics.histogram("spans.stage.wire.service")
            assert hist.count == 4


class TestProfileTelemetryMode:
    def test_profile_mode_exports_event_counters(self):
        points = [SweepPoint("unit", "tests.sweep.targets:with_profile",
                             {"n": 3}, telemetry="profile")]
        outcome = run_sweep(points)
        # Bootstrap + n timeouts, all owned by the worker process.
        assert outcome.metrics.counter("profile.events.total").value == 4
        assert outcome.metrics.counter(
            "profile.stage.other.events").value == 4

    def test_sweep_merged_profile_equals_single_run(self):
        # The sharding contract applied to the profiler: the sweep's
        # merged profile.* counters must equal what one direct run of
        # the same points records into a single registry.
        from repro.telemetry import Telemetry
        counts = [2, 5]
        points = [SweepPoint("unit", "tests.sweep.targets:with_profile",
                             {"n": n}, telemetry="profile")
                  for n in counts]
        merged = run_sweep(points).metrics

        direct = None
        total = 0
        for n in counts:
            telemetry = Telemetry(trace=False, profile=True)
            targets.with_profile(n, telemetry=telemetry)
            total += n + 1
            if direct is None:
                direct = telemetry.metrics
            else:
                direct.merge_from(telemetry.metrics.to_dict())
        assert merged.counter("profile.events.total").value == total
        for name in ("profile.events.total",
                     "profile.stage.other.events"):
            assert merged.counter(name).value == \
                direct.counter(name).value

    def test_plain_telemetry_mode_records_no_profile(self):
        points = [SweepPoint("unit", "tests.sweep.targets:with_profile",
                             {"n": 3}, telemetry=True)]
        outcome = run_sweep(points)
        assert "profile.events.total" not in outcome.metrics
