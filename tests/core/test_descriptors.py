"""Unit tests for compressed descriptor/CQE formats and BAR decode."""

import pytest

from repro.core import (
    COMPRESSED_CQE_SIZE,
    COMPRESSED_TX_DESC_SIZE,
    CompressedCqe,
    CompressedTxDescriptor,
    bar,
)
from repro.nic import Cqe, CQE_RECV_COMPLETION, OP_RDMA_SEND, WQE_SIZE
from repro.nic.wqe import OP_ETH_SEND


class TestCompressedTxDescriptor:
    def test_size_is_8_bytes(self):
        desc = CompressedTxDescriptor(handle=5, length=1500)
        assert len(desc.pack()) == COMPRESSED_TX_DESC_SIZE == 8

    def test_roundtrip(self):
        desc = CompressedTxDescriptor(handle=77, length=9000,
                                      context_id=0x123456,
                                      opcode=OP_RDMA_SEND, signaled=False)
        again = CompressedTxDescriptor.unpack(desc.pack())
        assert again.handle == 77
        assert again.length == 9000
        assert again.context_id == 0x123456
        assert again.opcode == OP_RDMA_SEND
        assert not again.signaled

    def test_expand_to_nic_wqe(self):
        desc = CompressedTxDescriptor(handle=3, length=512, context_id=9)
        wqe = desc.expand(qpn=12, wqe_index=100, buffer_addr=0xABCD00)
        assert len(wqe.pack()) == WQE_SIZE == 64
        assert wqe.qpn == 12
        assert wqe.wqe_index == 100
        assert wqe.buffer_addr == 0xABCD00
        assert wqe.byte_count == 512
        assert wqe.context_id == 9
        assert wqe.signaled

    def test_compression_ratio_vs_nic_format(self):
        """The headline 64 B -> 8 B descriptor compression (Table 2b)."""
        assert WQE_SIZE / COMPRESSED_TX_DESC_SIZE == 8.0

    def test_handle_range_checked(self):
        with pytest.raises(ValueError):
            CompressedTxDescriptor(handle=1 << 16, length=10)

    def test_length_range_checked(self):
        with pytest.raises(ValueError):
            CompressedTxDescriptor(handle=0, length=1 << 16)


class TestCompressedCqe:
    def test_size_is_15_bytes(self):
        cqe = CompressedCqe(CQE_RECV_COMPLETION, qpn=1, wqe_counter=2,
                            byte_count=100)
        assert len(cqe.pack()) == COMPRESSED_CQE_SIZE == 15

    def test_compress_from_nic_cqe(self):
        nic_cqe = Cqe(CQE_RECV_COMPLETION, qpn=7, wqe_counter=42,
                      byte_count=1500, flags=0x3, flow_tag=0xBEEF,
                      stride_index=5)
        compressed = CompressedCqe.compress(nic_cqe)
        assert compressed.qpn == 7
        assert compressed.wqe_counter == 42
        assert compressed.byte_count == 1500
        assert compressed.flags == 0x3
        assert compressed.flow_tag == 0xBEEF
        assert compressed.stride_index == 5

    def test_roundtrip(self):
        cqe = CompressedCqe(1, 2, 3, 4, flags=5, flow_tag=6, stride_index=7)
        again = CompressedCqe.unpack(cqe.pack())
        for field in CompressedCqe.__slots__:
            assert getattr(again, field) == getattr(cqe, field)


class TestBarLayout:
    def test_tx_ring_decode(self):
        region = bar.decode(bar.tx_ring_address(queue=1, wqe_index=2))
        assert region.region == "tx_ring"
        assert region.queue == 1
        assert region.offset == 2 * 64

    def test_tx_data_decode(self):
        region = bar.decode(bar.tx_data_address(queue=3, virt_offset=0x100))
        assert region.region == "tx_data"
        assert region.queue == 3
        assert region.offset == 0x100

    def test_rx_buffer_decode(self):
        region = bar.decode(bar.rx_buffer_address(0x42))
        assert region.region == "rx_buffer"
        assert region.offset == 0x42

    def test_cq_decode(self):
        region = bar.decode(bar.cq_address(2) + 128)
        assert region.region == "cq"
        assert region.queue == 2
        assert region.offset == 128

    def test_out_of_bar_raises(self):
        with pytest.raises(ValueError):
            bar.decode(bar.FLD_BAR_SIZE)

    def test_regions_are_disjoint_and_ordered(self):
        assert (bar.TX_RING_REGION < bar.TX_DATA_REGION
                < bar.RX_BUFFER_REGION < bar.CQ_REGION < bar.PI_REGION
                < bar.FLD_BAR_SIZE)
