"""Unit tests for buffer pools, descriptor pool and data translation."""

import pytest

from repro.core import (
    BufferPool,
    BufferPoolError,
    CompressedTxDescriptor,
    DataTranslationTable,
    DescriptorPool,
    TranslationError,
)


class TestBufferPool:
    def test_alloc_and_release(self):
        pool = BufferPool(4096, chunk_size=256)
        handles = pool.alloc(1000)
        assert len(handles) == 4  # ceil(1000/256)
        assert pool.free_chunks == 12
        pool.release_all(handles)
        assert pool.free_chunks == 16

    def test_exhaustion_returns_none(self):
        pool = BufferPool(1024, chunk_size=256)
        assert pool.alloc(1024) is not None
        assert pool.alloc(1) is None
        assert pool.stats_alloc_failures == 1

    def test_refcounting(self):
        pool = BufferPool(1024, chunk_size=256)
        (handle,) = pool.alloc(100)
        pool.add_ref(handle)
        pool.release(handle)
        assert pool.free_chunks == 3  # still held by second ref
        pool.release(handle)
        assert pool.free_chunks == 4

    def test_double_free_raises(self):
        pool = BufferPool(1024, chunk_size=256)
        (handle,) = pool.alloc(10)
        pool.release(handle)
        with pytest.raises(BufferPoolError):
            pool.release(handle)

    def test_scattered_roundtrip(self):
        pool = BufferPool(4096, chunk_size=256)
        data = bytes(range(256)) * 3  # 768 B across 3 chunks
        handles = pool.alloc(len(data))
        pool.write_scattered(handles, data)
        assert pool.read_scattered(handles, len(data)) == data

    def test_chunk_boundary_enforced(self):
        pool = BufferPool(1024, chunk_size=256)
        with pytest.raises(BufferPoolError):
            pool.write(0, 250, b"x" * 10)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            BufferPool(1000, chunk_size=256)  # not a multiple

    def test_min_free_watermark(self):
        pool = BufferPool(2048, chunk_size=256)
        handles = pool.alloc(2048)
        assert pool.stats_min_free == 0
        pool.release_all(handles)
        assert pool.stats_min_free == 0  # watermark is sticky


class TestDescriptorPool:
    def _descriptor(self, length=100):
        return CompressedTxDescriptor(handle=1, length=length)

    def test_store_lookup_remove(self):
        pool = DescriptorPool(64)
        slot = pool.store(queue=3, wqe_index=7, descriptor=self._descriptor())
        assert slot is not None
        assert pool.lookup(3, 7).length == 100
        pool.remove(3, 7)
        with pytest.raises(TranslationError):
            pool.lookup(3, 7)

    def test_slots_shared_across_queues(self):
        pool = DescriptorPool(8)
        for queue in range(4):
            for index in range(2):
                assert pool.store(queue, index, self._descriptor()) is not None
        assert pool.free_slots == 0
        assert pool.store(9, 0, self._descriptor()) is None
        assert pool.stats_failures == 1

    def test_slot_recycled_after_remove(self):
        pool = DescriptorPool(1)
        pool.store(0, 0, self._descriptor())
        pool.remove(0, 0)
        assert pool.store(0, 1, self._descriptor()) is not None

    def test_memory_accounts_pool_plus_table(self):
        pool = DescriptorPool(4096)
        # 4096 slots x 8 B + translation table (~4 B x 2x-provisioned).
        assert pool.memory_bytes >= 4096 * 8
        assert pool.memory_bytes <= 4096 * 8 + 40 * 1024


class TestDataTranslation:
    def _setup(self):
        pool = BufferPool(64 * 1024, chunk_size=256)
        xlt = DataTranslationTable(pool, window_bytes=16 * 1024)
        return pool, xlt

    def test_map_resolve(self):
        pool, xlt = self._setup()
        handles = pool.alloc(700)
        xlt.map_range(queue=0, virt_offset=0, handles=handles)
        handle, inner = xlt.resolve(0, 300)
        assert handle == handles[1]
        assert inner == 44

    def test_read_virtual_gathers_chunks(self):
        pool, xlt = self._setup()
        data = bytes(range(256)) * 4
        handles = pool.alloc(len(data))
        pool.write_scattered(handles, data)
        xlt.map_range(0, 512, handles)
        assert xlt.read_virtual(0, 512, len(data)) == data

    def test_unmapped_resolve_raises(self):
        _pool, xlt = self._setup()
        with pytest.raises(TranslationError):
            xlt.resolve(0, 0)

    def test_per_queue_isolation(self):
        pool, xlt = self._setup()
        a = pool.alloc(100)
        b = pool.alloc(100)
        xlt.map_range(0, 0, a)
        xlt.map_range(1, 0, b)
        assert xlt.resolve(0, 0)[0] == a[0]
        assert xlt.resolve(1, 0)[0] == b[0]

    def test_window_wraparound(self):
        pool, xlt = self._setup()
        handles = pool.alloc(512)
        # Map at the last chunk of the window: wraps to chunk 0.
        last_chunk_offset = 16 * 1024 - 256
        xlt.map_range(0, last_chunk_offset, handles)
        assert xlt.resolve(0, last_chunk_offset)[0] == handles[0]
        assert xlt.resolve(0, 0)[0] == handles[1]

    def test_unmap_returns_handles(self):
        pool, xlt = self._setup()
        handles = pool.alloc(700)
        xlt.map_range(0, 1024, handles)
        returned = xlt.unmap_range(0, 1024, len(handles))
        assert returned == handles

    def test_unaligned_map_rejected(self):
        pool, xlt = self._setup()
        handles = pool.alloc(100)
        with pytest.raises(TranslationError):
            xlt.map_range(0, 100, handles)
