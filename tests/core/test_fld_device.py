"""Unit tests for the FlexDriver top-level BAR handling and errors."""

import pytest

from repro.core import AxisMetadata, FlexDriver, FldConfig, FldError, bar
from repro.nic import CQE_RECV_COMPLETION, CQE_SEND_COMPLETION, Cqe
from repro.nic.wqe import CQE_ERROR
from repro.pcie import PcieError, PcieFabric
from repro.sim import Simulator


def make_fld(**config):
    sim = Simulator()
    fabric = PcieFabric(sim)
    fld = FlexDriver(sim, fabric, config=FldConfig(**config))
    return sim, fld


class TestBarHandling:
    def test_rx_buffer_write_lands_in_sram(self):
        _sim, fld = make_fld()
        fld.bind_rx_queue(0, FlexDriver.RX_CQ_BASE, 2, 8, 2048, 0x100)
        fld.handle_write(bar.rx_buffer_address(0), b"packet bytes")
        cqe = Cqe(CQE_RECV_COMPLETION, 1, 0, 12)
        fld.handle_write(bar.cq_address(FlexDriver.RX_CQ_BASE), cqe.pack())
        # rx_stream receives the packet after the pipeline latency.
        _sim.run()
        assert len(fld.rx_stream) == 1

    def test_cqe_on_unbound_ring_reports_error(self):
        _sim, fld = make_fld()
        cqe = Cqe(CQE_RECV_COMPLETION, 1, 0, 0)
        fld.handle_write(bar.cq_address(7), cqe.pack())
        assert fld.errors.stats_reported == 1

    def test_error_cqe_reported_to_channel(self):
        sim, fld = make_fld()
        fld.bind_tx_queue(0, 5, 16, 0, 0, cq_index=0)
        errors = []

        def drain(sim):
            error = yield fld.errors.channel.get()
            errors.append(error)

        sim.spawn(drain(sim))
        cqe = Cqe(CQE_ERROR, 5, 0, 0, syndrome=9)
        fld.handle_write(bar.cq_address(0), cqe.pack())
        sim.run()
        assert errors and errors[0].kind == FldError.CQE_ERROR
        assert errors[0].syndrome == 9

    def test_short_cqe_write_rejected(self):
        _sim, fld = make_fld()
        with pytest.raises(PcieError):
            fld.handle_write(bar.cq_address(0), b"\x00" * 10)

    def test_pi_region_writes_accepted(self):
        _sim, fld = make_fld()
        fld.handle_write(bar.PI_REGION, b"\x00\x00\x00\x01")  # no raise

    def test_unreadable_region_rejected(self):
        _sim, fld = make_fld()
        with pytest.raises(PcieError):
            fld.handle_read(bar.rx_buffer_address(0), 64)

    def test_send_completion_routes_to_tx(self):
        _sim, fld = make_fld()
        fld.bind_tx_queue(0, qpn=5, entries=16, doorbell_addr=0,
                          mmio_addr=0, cq_index=0, use_mmio=False)
        fld.tx.mmio_writer = lambda a, d: None  # detach PCIe
        fld.tx.submit(0, b"x" * 64, AxisMetadata(queue_id=0))
        cqe = Cqe(CQE_SEND_COMPLETION, 5, 0, 64)
        fld.handle_write(bar.cq_address(0), cqe.pack())
        assert fld.tx.descriptors.free_slots == fld.tx.descriptors.capacity


class TestSendPath:
    def test_try_send_respects_credits(self):
        sim, fld = make_fld()
        fld.bind_tx_queue(0, 5, entries=4, doorbell_addr=0, mmio_addr=0,
                          cq_index=0, credits=2)
        fld.tx.mmio_writer = lambda a, d: None
        assert fld.try_send(b"a", AxisMetadata(queue_id=0))
        assert fld.try_send(b"b", AxisMetadata(queue_id=0))
        assert not fld.try_send(b"c", AxisMetadata(queue_id=0))
        sim.run()
        assert fld.stats_tx_packets == 2

    def test_send_blocks_for_credit_until_completion(self):
        sim, fld = make_fld()
        fld.bind_tx_queue(0, 5, entries=4, doorbell_addr=0, mmio_addr=0,
                          cq_index=0, credits=1)
        fld.tx.mmio_writer = lambda a, d: None
        sent = []

        def sender(sim):
            yield from fld.send(b"first", AxisMetadata(queue_id=0))
            sent.append(("first", sim.now))
            yield from fld.send(b"second", AxisMetadata(queue_id=0))
            sent.append(("second", sim.now))

        def completer(sim):
            yield sim.timeout(1.0)
            fld.tx.on_send_completion(5, 0)
            fld.tx.credits.refund(0, 0)  # no-op; credits refunded above

        sim.spawn(sender(sim))
        sim.spawn(completer(sim))
        sim.run(until=2.0)
        assert sent[0][0] == "first"
        assert sent[1][1] >= 1.0  # waited for the completion's credit

    def test_on_die_memory_totals(self):
        _sim, fld = make_fld()
        fld.bind_tx_queue(0, 5, 16, 0, 0, cq_index=0)
        fld.bind_rx_queue(0, FlexDriver.RX_CQ_BASE, 2, 8, 2048, 0)
        memory = fld.on_die_memory()
        expected = sum(v for k, v in memory.items() if k != "total")
        assert memory["total"] == expected
        assert memory["tx_buffers"] == 256 * 1024
        assert memory["rx_buffers"] == 256 * 1024


class TestErrorReporter:
    def test_reports_carry_time_and_detail(self):
        sim, fld = make_fld()

        def later(sim):
            yield sim.timeout(2.5)
            fld.errors.report(FldError.RING_OVERFLOW, queue=3,
                              detail="tx ring 3 overflow")

        sim.spawn(later(sim))
        sim.run()
        error = fld.errors.channel.try_get()
        assert error.kind == FldError.RING_OVERFLOW
        assert error.queue == 3
        assert error.time == pytest.approx(2.5)
        assert "overflow" in repr(error) or error.detail
