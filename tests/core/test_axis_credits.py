"""Unit tests for the AXI-stream interface and credit machinery (§5.5)."""

import pytest

from repro.core import AxisMetadata, AxisStream, CreditInterface
from repro.sim import Simulator


class TestAxisStream:
    def test_push_and_get(self):
        sim = Simulator()
        stream = AxisStream(sim, "s")
        got = []

        def consumer(sim):
            data, meta = yield stream.get()
            got.append((data, meta.queue_id))

        stream.push(b"abc", AxisMetadata(queue_id=3))
        sim.spawn(consumer(sim))
        sim.run()
        assert got == [(b"abc", 3)]

    def test_bounded_stream_drops_on_overflow(self):
        """The no-backpressure rule: a slow accelerator loses packets."""
        sim = Simulator()
        stream = AxisStream(sim, "s", depth=2)
        assert stream.push(b"1", AxisMetadata())
        assert stream.push(b"2", AxisMetadata())
        assert not stream.push(b"3", AxisMetadata())
        assert stream.stats_dropped == 1
        assert stream.stats_delivered == 2

    def test_fifo_order(self):
        sim = Simulator()
        stream = AxisStream(sim, "s")
        for i in range(5):
            stream.push(bytes([i]), AxisMetadata())
        got = []

        def consumer(sim):
            for _ in range(5):
                data, _meta = yield stream.get()
                got.append(data[0])

        sim.spawn(consumer(sim))
        sim.run()
        assert got == [0, 1, 2, 3, 4]


class TestAxisMetadata:
    def test_defaults(self):
        meta = AxisMetadata()
        assert meta.queue_id == 0
        assert meta.msg_first and meta.msg_last
        assert meta.signaled

    def test_repr_mentions_queue_and_context(self):
        meta = AxisMetadata(queue_id=2, context_id=0xAB)
        assert "q=2" in repr(meta) and "0xab" in repr(meta)


class TestCreditInterface:
    def test_consume_and_refund(self):
        sim = Simulator()
        credits = CreditInterface(sim)
        credits.configure(0, 4)
        assert credits.available(0) == 4
        assert credits.try_consume(0, 3)
        assert not credits.try_consume(0, 2)
        credits.refund(0, 2)
        assert credits.available(0) == 3

    def test_refund_capped_at_capacity(self):
        sim = Simulator()
        credits = CreditInterface(sim)
        credits.configure(0, 4)
        credits.refund(0, 10)
        assert credits.available(0) == 4

    def test_acquire_blocks_until_refund(self):
        sim = Simulator()
        credits = CreditInterface(sim)
        credits.configure(0, 1)
        order = []

        def consumer(sim):
            yield credits.acquire(0)
            order.append(("first", sim.now))
            yield credits.acquire(0)
            order.append(("second", sim.now))

        def producer(sim):
            yield sim.timeout(1.0)
            credits.refund(0, 1)

        sim.spawn(consumer(sim))
        sim.spawn(producer(sim))
        sim.run()
        assert order == [("first", 0.0), ("second", 1.0)]
        assert credits.stats_waits == 1

    def test_per_queue_isolation(self):
        sim = Simulator()
        credits = CreditInterface(sim)
        credits.configure(0, 2)
        credits.configure(1, 5)
        credits.try_consume(0, 2)
        assert credits.available(1) == 5

    def test_refund_unknown_queue_raises(self):
        sim = Simulator()
        credits = CreditInterface(sim)
        with pytest.raises(KeyError):
            credits.refund(9)

    def test_waiters_fifo(self):
        sim = Simulator()
        credits = CreditInterface(sim)
        credits.configure(0, 0)
        order = []

        def waiter(sim, tag):
            yield credits.acquire(0)
            order.append(tag)

        sim.spawn(waiter(sim, "a"))
        sim.spawn(waiter(sim, "b"))

        def refunder(sim):
            yield sim.timeout(1.0)
            credits.refund(0, 1)
            yield sim.timeout(1.0)
            credits.refund(0, 1)

        sim.spawn(refunder(sim))
        sim.run()
        assert order == ["a", "b"]
