"""Unit tests for the FLD Tx/Rx ring managers (no NIC attached)."""

import pytest

from repro.core import (
    AxisMetadata,
    BufferPool,
    CompressedCqe,
    RxError,
    RxRingManager,
    TranslationError,
    TxQueueError,
    TxRingManager,
)
from repro.nic import CQE_RECV_COMPLETION, TxWqe, WQE_SIZE
from repro.sim import Simulator


def make_tx(descriptors=64, buffer_bytes=16 * 1024, mmio_log=None):
    sim = Simulator()
    pool = BufferPool(buffer_bytes, chunk_size=256)
    writer = (lambda addr, data: mmio_log.append((addr, data))) \
        if mmio_log is not None else None
    tx = TxRingManager(sim, pool, descriptors, mmio_writer=writer,
                       bar_base=0x1000_0000)
    return sim, tx


class TestTxSubmit:
    def test_submit_stores_compressed_state(self):
        _sim, tx = make_tx()
        tx.add_queue(0, qpn=5, entries=16, doorbell_addr=0x10,
                     mmio_addr=0x20)
        index = tx.submit(0, b"frame" * 20, AxisMetadata(queue_id=0))
        assert index == 0
        descriptor = tx.descriptors.lookup(0, 0)
        assert descriptor.length == 100

    def test_mmio_doorbell_carries_expanded_wqe(self):
        log = []
        _sim, tx = make_tx(mmio_log=log)
        tx.add_queue(0, qpn=5, entries=16, doorbell_addr=0x10,
                     mmio_addr=0x20, use_mmio=True)
        tx.submit(0, b"x" * 64, AxisMetadata(queue_id=0))
        assert len(log) == 1
        addr, data = log[0]
        assert addr == 0x20
        wqe = TxWqe.unpack(data)
        assert wqe.qpn == 5 and wqe.byte_count == 64

    def test_plain_doorbell_mode(self):
        log = []
        _sim, tx = make_tx(mmio_log=log)
        tx.add_queue(0, qpn=5, entries=16, doorbell_addr=0x10,
                     mmio_addr=0x20, use_mmio=False)
        tx.submit(0, b"x", AxisMetadata(queue_id=0))
        addr, data = log[0]
        assert addr == 0x10
        assert int.from_bytes(data, "big") == 1

    def test_ring_read_generates_wqes_on_the_fly(self):
        _sim, tx = make_tx()
        tx.add_queue(0, qpn=9, entries=16, doorbell_addr=0, mmio_addr=0)
        payload = bytes(range(256)) * 2
        tx.submit(0, payload, AxisMetadata(queue_id=0))
        raw = tx.handle_ring_read(0, 0, WQE_SIZE)
        wqe = TxWqe.unpack(raw)
        assert wqe.byte_count == len(payload)
        # ...and the advertised data address resolves to the payload.
        data = tx.handle_data_read(
            0, (wqe.buffer_addr - 0x1000_0000) & 0x7_FFFF, len(payload))
        assert data == payload

    def test_batched_ring_read(self):
        _sim, tx = make_tx()
        tx.add_queue(0, qpn=9, entries=16, doorbell_addr=0, mmio_addr=0)
        for i in range(4):
            tx.submit(0, bytes([i]) * 100, AxisMetadata(queue_id=0))
        raw = tx.handle_ring_read(0, 0, 4 * WQE_SIZE)
        wqes = [TxWqe.unpack(raw[i * 64:(i + 1) * 64]) for i in range(4)]
        assert [w.wqe_index for w in wqes] == [0, 1, 2, 3]

    def test_read_of_unposted_slot_raises(self):
        _sim, tx = make_tx()
        tx.add_queue(0, qpn=9, entries=16, doorbell_addr=0, mmio_addr=0)
        with pytest.raises(TranslationError):
            tx.handle_ring_read(0, 0, WQE_SIZE)

    def test_unaligned_ring_read_rejected(self):
        _sim, tx = make_tx()
        tx.add_queue(0, qpn=9, entries=16, doorbell_addr=0, mmio_addr=0)
        with pytest.raises(TxQueueError):
            tx.handle_ring_read(0, 7, 64)

    def test_completion_recycles_everything(self):
        _sim, tx = make_tx()
        tx.add_queue(0, qpn=9, entries=16, doorbell_addr=0, mmio_addr=0)
        for i in range(5):
            tx.submit(0, bytes(300), AxisMetadata(queue_id=0))
        free_before = tx.buffers.free_chunks
        retired = tx.on_send_completion(qpn=9, wqe_counter=4)
        assert retired == 5
        assert tx.buffers.free_chunks == tx.buffers.num_chunks
        assert tx.descriptors.free_slots == tx.descriptors.capacity
        assert tx.credits.available(0) == tx.credits.capacity(0)

    def test_cumulative_completion_is_selective_signalling(self):
        _sim, tx = make_tx()
        tx.add_queue(0, qpn=9, entries=32, doorbell_addr=0, mmio_addr=0)
        for _ in range(16):
            tx.submit(0, bytes(64), AxisMetadata(queue_id=0))
        assert tx.on_send_completion(9, 15) == 16

    def test_ring_overflow_rejected(self):
        _sim, tx = make_tx()
        tx.add_queue(0, qpn=9, entries=4, doorbell_addr=0, mmio_addr=0)
        for _ in range(4):
            tx.submit(0, b"x", AxisMetadata(queue_id=0))
        with pytest.raises(TxQueueError):
            tx.submit(0, b"x", AxisMetadata(queue_id=0))

    def test_buffer_exhaustion_rejected(self):
        _sim, tx = make_tx(buffer_bytes=1024)
        tx.add_queue(0, qpn=9, entries=64, doorbell_addr=0, mmio_addr=0)
        tx.submit(0, bytes(1024), AxisMetadata(queue_id=0))
        with pytest.raises(TxQueueError):
            tx.submit(0, bytes(256), AxisMetadata(queue_id=0))

    def test_unknown_queue_rejected(self):
        _sim, tx = make_tx()
        with pytest.raises(TxQueueError):
            tx.submit(9, b"x", AxisMetadata(queue_id=9))

    def test_completion_for_unknown_qpn_rejected(self):
        _sim, tx = make_tx()
        with pytest.raises(TxQueueError):
            tx.on_send_completion(qpn=123, wqe_counter=0)

    def test_memory_accounting_reports_components(self):
        _sim, tx = make_tx()
        tx.add_queue(0, qpn=1, entries=16, doorbell_addr=0, mmio_addr=0)
        memory = tx.memory_bytes()
        assert memory["tx_buffers"] == 16 * 1024
        assert memory["tx_descriptor_pool"] > 0
        assert memory["tx_data_translation"] > 0


class TestRxManager:
    def make_rx(self, emitted=None, doorbells=None):
        sim = Simulator()
        rx = RxRingManager(
            sim, capacity_bytes=64 * 1024,
            mmio_writer=(lambda a, d: doorbells.append((a, d)))
            if doorbells is not None else None,
            emit=(lambda data, meta: emitted.append((data, meta)))
            if emitted is not None else None,
        )
        return sim, rx

    def test_binding_carves_sram(self):
        _sim, rx = self.make_rx()
        first = rx.add_binding(0, ring_entries=2, strides_per_buffer=8,
                               stride_size=2048, rq_doorbell_addr=0x100)
        assert first == 0
        second = rx.add_binding(1, ring_entries=1, strides_per_buffer=8,
                                stride_size=2048, rq_doorbell_addr=0x200)
        assert second == 2 * 8 * 2048

    def test_sram_exhaustion_rejected(self):
        _sim, rx = self.make_rx()
        with pytest.raises(RxError):
            rx.add_binding(0, ring_entries=8, strides_per_buffer=8,
                           stride_size=2048, rq_doorbell_addr=0)

    def test_completion_emits_packet_data(self):
        emitted = []
        _sim, rx = self.make_rx(emitted=emitted)
        rx.add_binding(0, 2, 8, 2048, 0x100)
        rx.handle_buffer_write(0, b"hello packet")
        cqe = CompressedCqe(CQE_RECV_COMPLETION, qpn=1, wqe_counter=0,
                            byte_count=12, flow_tag=0x77)
        rx.on_recv_completion(0, cqe)
        assert emitted == [(b"hello packet", emitted[0][1])]
        assert emitted[0][1].context_id == 0x77

    def test_stride_addressing(self):
        emitted = []
        _sim, rx = self.make_rx(emitted=emitted)
        rx.add_binding(0, 2, 8, 2048, 0x100)
        rx.handle_buffer_write(3 * 2048, b"stride three")
        cqe = CompressedCqe(CQE_RECV_COMPLETION, 1, wqe_counter=0,
                            byte_count=12, stride_index=3)
        rx.on_recv_completion(0, cqe)
        assert emitted[0][0] == b"stride three"

    def test_in_order_recycle_rings_doorbell(self):
        doorbells = []
        _sim, rx = self.make_rx(doorbells=doorbells)
        rx.add_binding(0, 2, 8, 2048, 0x100)
        # A completion for descriptor 1 means buffer 0 is done.
        cqe = CompressedCqe(CQE_RECV_COMPLETION, 1, wqe_counter=1,
                            byte_count=0)
        rx.on_recv_completion(0, cqe)
        assert len(doorbells) == 1
        addr, data = doorbells[0]
        assert addr == 0x100
        assert int.from_bytes(data, "big") == 3  # pi advanced past 2

    def test_out_of_range_buffer_write_rejected(self):
        _sim, rx = self.make_rx()
        with pytest.raises(RxError):
            rx.handle_buffer_write(64 * 1024 - 4, b"too long")

    def test_unknown_binding_rejected(self):
        _sim, rx = self.make_rx()
        with pytest.raises(RxError):
            rx.on_recv_completion(5, CompressedCqe(1, 1, 0, 0))

    def test_memory_accounting(self):
        _sim, rx = self.make_rx()
        memory = rx.memory_bytes()
        assert memory["rx_buffers"] == 64 * 1024
        assert memory["rx_ring"] == 0
