"""Cuckoo-table churn: long interleaved insert/evict/delete histories.

The basic tests (``test_cuckoo.py``) pin single operations; these runs
grind the table through thousands of interleaved mutations — including
capacity pressure, stash traffic and insert-after-stall recovery — and
check it against a plain-dict model the whole way.  The program-map
subsystem (``repro.prog.maps``) leans on exactly these behaviours for
per-packet datapath state, so regressions here surface as silent map
corruption there.
"""

import random

import pytest

from repro import batching
from repro.core.cuckoo import CuckooFullError, CuckooHashTable


def churn(table, model, rng, steps, key_space):
    """One random mutation step; keeps ``model`` (a dict) in lockstep."""
    for _ in range(steps):
        key = rng.randrange(key_space)
        op = rng.random()
        if op < 0.55:                          # insert (or dup attempt)
            value = rng.randrange(1 << 32)
            if key in model:
                with pytest.raises(KeyError):
                    table.insert(key, value)
            else:
                try:
                    table.insert(key, value)
                except CuckooFullError:
                    assert key not in table
                    continue
                model[key] = value
        elif op < 0.85:                        # delete
            if key in model:
                assert table.remove(key) == model.pop(key)
            else:
                with pytest.raises(KeyError):
                    table.remove(key)
        else:                                  # lookup
            assert table.lookup(key) == model.get(key)


class TestChurnAgainstModel:
    def test_long_random_history_matches_dict(self):
        rng = random.Random(0xF1D)
        table = CuckooHashTable(256)
        model = {}
        churn(table, model, rng, steps=6000, key_space=512)
        assert len(table) == len(model)
        for key, value in model.items():
            assert table.lookup(key) == value

    def test_churn_under_capacity_pressure(self):
        """A small table driven at ~full occupancy stays consistent:
        inserts may stall, but nothing stored is ever lost or mangled."""
        rng = random.Random(7)
        table = CuckooHashTable(32)
        model = {}
        churn(table, model, rng, steps=4000, key_space=64)
        assert len(table) == len(model)
        for key, value in model.items():
            assert table.lookup(key) == value
        stats = table.stats_dict()
        assert stats["entries"] == len(model)

    def test_insert_evict_delete_interleaving_reuses_slots(self):
        """Fill to capacity, delete half, refill: the vacated slots are
        reusable and the survivors are untouched."""
        table = CuckooHashTable(64)
        inserted = []
        for key in range(1000):
            try:
                table.insert(key, key * 3)
            except CuckooFullError:
                break
            inserted.append(key)
        assert len(inserted) >= 32          # at least the provisioned cap
        evens = [k for k in inserted if k % 2 == 0]
        odds = [k for k in inserted if k % 2 == 1]
        for key in evens:
            assert table.remove(key) == key * 3
        for key in odds:
            assert table.lookup(key) == key * 3
        refilled = 0
        for key in range(2000, 4000):
            try:
                table.insert(key, key)
            except CuckooFullError:
                break
            refilled += 1
        assert refilled >= len(evens)       # freed capacity is usable
        for key in odds:
            assert table.lookup(key) == key * 3

    def test_stall_recovery_after_deletes(self):
        """After an insertion stalls, deleting entries makes the very
        same key insertable again (no permanently poisoned keys)."""
        table = CuckooHashTable(16)
        keys = iter(range(100_000))
        stored = []
        stalled_key = None
        while stalled_key is None:
            key = next(keys)
            try:
                table.insert(key, key)
                stored.append(key)
            except CuckooFullError:
                stalled_key = key
        for key in stored[: len(stored) // 2]:
            table.remove(key)
        table.insert(stalled_key, stalled_key)
        assert table.lookup(stalled_key) == stalled_key

    def test_churn_stats_are_consistent(self):
        rng = random.Random(99)
        table = CuckooHashTable(128)
        model = {}
        churn(table, model, rng, steps=3000, key_space=256)
        stats = table.stats_dict()
        assert stats["entries"] == len(model)
        assert stats["inserts"] >= len(model)
        assert stats["lookups"] > 0
        assert stats["stash_depth"] <= stats["stash_peak"]


class TestBatchLookupUnderChurn:
    """``lookup_many`` in lockstep with the dict model while the table
    churns — misses, stash traffic and capacity pressure included."""

    @pytest.fixture(params=[True, False], ids=["batched", "scalar"])
    def mode(self, request):
        previous = batching.set_batch_enabled(request.param)
        yield request.param
        batching.set_batch_enabled(previous)

    def _churn_with_batch_probes(self, table, key_fn, capacity_pressure):
        rng = random.Random(0xBA7C4 + table.capacity)
        key_space = table.capacity * (1 if capacity_pressure else 2)
        model = {}
        for step in range(2500):
            key = key_fn(rng.randrange(key_space))
            op = rng.random()
            if op < 0.55:
                value = rng.randrange(1 << 32)
                if key not in model:
                    try:
                        table.insert(key, value)
                    except CuckooFullError:
                        continue
                    model[key] = value
            elif op < 0.85:
                if key in model:
                    assert table.remove(key) == model.pop(key)
            if step % 50 == 0:
                # A probe batch mixing hits and guaranteed misses.
                probes = [key_fn(rng.randrange(key_space * 2))
                          for _ in range(32)]
                assert table.lookup_many(probes) \
                    == [model.get(k) for k in probes]
        assert table.lookup_many(list(model)) == list(model.values())

    def test_int_keys_lockstep(self, mode):
        self._churn_with_batch_probes(CuckooHashTable(256), int,
                                      capacity_pressure=False)

    def test_int_keys_lockstep_under_capacity_pressure(self, mode):
        self._churn_with_batch_probes(CuckooHashTable(32), int,
                                      capacity_pressure=True)

    def test_tuple_keys_lockstep(self, mode):
        """(queue, index) tuples — the translation-table key shape."""
        self._churn_with_batch_probes(
            CuckooHashTable(256), lambda n: (n % 7, n // 7),
            capacity_pressure=False)

    def test_tuple_keys_lockstep_under_capacity_pressure(self, mode):
        self._churn_with_batch_probes(
            CuckooHashTable(32), lambda n: (n % 5, n // 5),
            capacity_pressure=True)

    def test_lookup_many_counts_stats_like_scalar(self, mode):
        """N batched probes bump ``stats_lookups`` by exactly N."""
        table = CuckooHashTable(64)
        for i in range(20):
            table.insert(i, i)
        before = table.stats_lookups
        table.lookup_many(list(range(40)))
        assert table.stats_lookups == before + 40
        assert table.lookup_many([]) == []
        assert table.stats_lookups == before + 40

    def test_batch_probes_through_a_stall(self, mode):
        """Fill a tiny table until insertion stalls; batch lookups still
        agree with the model, including entries living in the stash."""
        table = CuckooHashTable(16)
        model = {}
        for key in range(100_000):
            try:
                table.insert(key, key * 2)
            except CuckooFullError:
                break
            model[key] = key * 2
        assert table.stats_stalls >= 1
        probes = list(range(0, 2 * len(model)))
        assert table.lookup_many(probes) == [model.get(k) for k in probes]
