"""Unit tests for the 4-bank cuckoo hash table."""

import pytest

from repro.core import CuckooFullError, CuckooHashTable, NUM_BANKS, STASH_SIZE


class TestBasicOperations:
    def test_insert_lookup(self):
        table = CuckooHashTable(capacity=64)
        table.insert(("q", 1), 100)
        assert table.lookup(("q", 1)) == 100

    def test_lookup_missing_returns_none(self):
        table = CuckooHashTable(capacity=64)
        assert table.lookup("missing") is None

    def test_remove(self):
        table = CuckooHashTable(capacity=64)
        table.insert("k", 1)
        assert table.remove("k") == 1
        assert table.lookup("k") is None
        assert len(table) == 0

    def test_remove_missing_raises(self):
        table = CuckooHashTable(capacity=64)
        with pytest.raises(KeyError):
            table.remove("nope")

    def test_duplicate_insert_rejected(self):
        table = CuckooHashTable(capacity=64)
        table.insert("k", 1)
        with pytest.raises(KeyError):
            table.insert("k", 2)

    def test_contains(self):
        table = CuckooHashTable(capacity=64)
        table.insert("k", 1)
        assert "k" in table
        assert "other" not in table

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            CuckooHashTable(capacity=0)

    def test_invalid_load_factor(self):
        with pytest.raises(ValueError):
            CuckooHashTable(capacity=4, load_factor=1.5)


class TestCapacityBehaviour:
    def test_fills_to_capacity_at_half_load(self):
        """Load factor 1/2 (the paper's choice) must never stall."""
        table = CuckooHashTable(capacity=1024, load_factor=0.5)
        for i in range(1024):
            table.insert(("queue", i), i)
        assert len(table) == 1024
        for i in range(1024):
            assert table.lookup(("queue", i)) == i

    def test_over_capacity_stalls(self):
        table = CuckooHashTable(capacity=16, load_factor=0.5)
        for i in range(16):
            table.insert(i, i)
        with pytest.raises(CuckooFullError):
            table.insert(1000, 0)
        assert table.stats_stalls == 1

    def test_churn_insert_remove(self):
        """Sustained insert/remove cycles converge (the FLD tx pattern)."""
        table = CuckooHashTable(capacity=256, load_factor=0.5)
        for round_no in range(20):
            for i in range(256):
                table.insert((round_no, i), i)
            for i in range(256):
                assert table.remove((round_no, i)) == i
        assert len(table) == 0

    def test_memory_accounting_doubles_for_load_factor(self):
        table = CuckooHashTable(capacity=1024, load_factor=0.5, entry_size=4)
        slots = NUM_BANKS * table.bank_size
        assert slots >= 2048
        assert table.memory_bytes == (slots + STASH_SIZE) * 4

    def test_occupancy_reporting(self):
        table = CuckooHashTable(capacity=64, load_factor=0.5)
        for i in range(32):
            table.insert(i, i)
        assert 0 < table.occupancy <= 0.5


class TestStash:
    def test_stash_peak_recorded_under_pressure(self):
        """At high load factors collisions spill to the stash."""
        table = CuckooHashTable(capacity=256, load_factor=0.95)
        inserted = 0
        try:
            for i in range(256):
                table.insert(("x", i), i)
                inserted += 1
        except CuckooFullError:
            pass
        # Either everything fit or the stash saw traffic on the way.
        assert inserted == 256 or table.stats_stash_peak > 0

    def test_kicks_counted(self):
        table = CuckooHashTable(capacity=512, load_factor=0.9)
        try:
            for i in range(512):
                table.insert(("k", i), i)
        except CuckooFullError:
            pass
        # With 4 banks at 90% provisioning some displacement is expected.
        assert table.stats_kicks >= 0  # smoke: counter exists and is sane

    def test_lookup_finds_stashed_entries(self):
        """Entries mid-eviction (in the stash) must remain visible."""
        table = CuckooHashTable(capacity=128, load_factor=0.99)
        keys = [("s", i) for i in range(128)]
        stored = []
        try:
            for key in keys:
                table.insert(key, key[1])
                stored.append(key)
        except CuckooFullError:
            pass
        for key in stored:
            assert table.lookup(key) == key[1]
