"""ZUC cipher validation against the ETSI/SAGE specification vectors."""

import pytest

from repro.accelerators.zuc import (
    Zuc,
    eea3_decrypt,
    eea3_encrypt,
    eia3_mac,
    eia3_verify,
)


class TestZucKeystream:
    """Test vectors from the ZUC specification (Document 3)."""

    def test_all_zero_key_iv(self):
        zuc = Zuc(bytes(16), bytes(16))
        assert zuc.keystream(2) == [0x27BEDE74, 0x018082DA]

    def test_all_ff_key_iv(self):
        zuc = Zuc(b"\xff" * 16, b"\xff" * 16)
        assert zuc.keystream(2) == [0x0657CFA0, 0x7096398B]

    def test_random_key_iv_vector(self):
        key = bytes.fromhex("3d4c4be96a82fdaeb58f641db17b455b")
        iv = bytes.fromhex("84319aa8de6915ca1f6bda6bfbd8c766")
        zuc = Zuc(key, iv)
        assert zuc.keystream(2) == [0x14F1C272, 0x3279C419]

    def test_keystream_bytes_truncates(self):
        zuc = Zuc(bytes(16), bytes(16))
        assert zuc.keystream_bytes(5) == bytes.fromhex("27bede7401")

    def test_bad_key_size_rejected(self):
        with pytest.raises(ValueError):
            Zuc(bytes(15), bytes(16))
        with pytest.raises(ValueError):
            Zuc(bytes(16), bytes(17))

    def test_deterministic(self):
        a = Zuc(bytes(range(16)), bytes(range(16, 32))).keystream(8)
        b = Zuc(bytes(range(16)), bytes(range(16, 32))).keystream(8)
        assert a == b


class TestEea3:
    """128-EEA3 test sets from the specification (Document 3)."""

    def test_test_set_1(self):
        ck = bytes.fromhex("173d14ba5003731d7a60049470f00a29")
        plaintext = bytes.fromhex(
            "6cf65340735552ab0c9752fa6f9025fe0bd675d9005875b200000000"
            "0000000000"
        )
        expected = bytes.fromhex(
            "a6c85fc66afb8533aafc2518dfe784940ee1e4b030238cc800000000"
            "0000000000"
        )
        out = eea3_encrypt(ck, 0x66035492, 0xF, 0, plaintext, nbits=193)
        assert out == expected

    def test_test_set_2(self):
        ck = bytes.fromhex("e5bd3ea0eb55ade866c6ac58bd54302a")
        count, bearer, direction, nbits = 0x56823, 0x18, 1, 800
        plaintext = bytes.fromhex(
            "14a8ef693d678507bbe7270a7f67ff5006c3525b9807e467c4e56000"
            "ba338f5d429559036751822246c80d3b38f07f4be2d8ff5805f51322"
            "29bde93bbbdcaf382bf1ee972fbf9977bada8945847a2a6c9ad34a66"
            "7554e04d1f7fa2c33241bd8f01ba220d"
        )
        expected = bytes.fromhex(
            "131d43e0dea1be5c5a1bfd971d852cbf712d7b4f57961fea3208afa8"
            "bca433f456ad09c7417e58bc69cf8866d1353f74865e80781d202dfb"
            "3ecff7fcbc3b190fe82a204ed0e350fc0f6f2613b2f2bca6df5a473a"
            "57a4a00d985ebad880d6f23864a07b01"
        )
        out = eea3_encrypt(ck, count, bearer, direction, plaintext,
                           nbits=nbits)
        assert out == expected

    def test_roundtrip(self):
        key = bytes(range(16))
        message = b"round trip of an arbitrary payload" * 10
        ciphertext = eea3_encrypt(key, 1, 2, 0, message)
        assert ciphertext != message
        assert eea3_decrypt(key, 1, 2, 0, ciphertext) == message

    def test_direction_matters(self):
        key = bytes(range(16))
        a = eea3_encrypt(key, 1, 2, 0, b"x" * 64)
        b = eea3_encrypt(key, 1, 2, 1, b"x" * 64)
        assert a != b

    def test_count_matters(self):
        key = bytes(range(16))
        assert (eea3_encrypt(key, 1, 2, 0, b"x" * 64)
                != eea3_encrypt(key, 2, 2, 0, b"x" * 64))

    def test_invalid_bearer_rejected(self):
        with pytest.raises(ValueError):
            eea3_encrypt(bytes(16), 0, 32, 0, b"x")

    def test_nbits_exceeding_message_rejected(self):
        with pytest.raises(ValueError):
            eea3_encrypt(bytes(16), 0, 0, 0, b"x", nbits=9)


class TestEia3:
    """128-EIA3 test sets from the specification (Document 3)."""

    def test_test_set_1(self):
        assert eia3_mac(bytes(16), 0, 0, 0, bytes(1), nbits=1) == 0xC8A9595E

    def test_test_set_2(self):
        ik = bytes.fromhex("47054125561eb2dda94059da05097850")
        assert eia3_mac(ik, 0x561EB2DD, 0x14, 0, bytes(12),
                        nbits=90) == 0x6719A088

    def test_test_set_3(self):
        ik = bytes.fromhex("c9e6cec4607c72db000aefa88385ab0a")
        message = bytes.fromhex(
            "983b41d47d780c9e1ad11d7eb70391b1de0b35da2dc62f83e7b78d63"
            "06ca0ea07e941b7be91348f9fcb170e2217fecd97f9f68adb16e5d7d"
            "21e569d280ed775cebde3f4093c53881000000000000000000"
        )
        assert eia3_mac(ik, 0xA94059DA, 0xA, 1, message,
                        nbits=577) == 0xFAE8FF0B

    def test_verify_accepts_and_rejects(self):
        key = bytes(range(16))
        message = b"authenticated message"
        mac = eia3_mac(key, 5, 1, 0, message)
        assert eia3_verify(key, 5, 1, 0, message, mac)
        assert not eia3_verify(key, 5, 1, 0, message + b"!", mac)
        assert not eia3_verify(key, 5, 1, 0, message, mac ^ 1)

    def test_key_matters(self):
        message = b"m" * 32
        assert (eia3_mac(bytes(16), 0, 0, 0, message)
                != eia3_mac(bytes([1] * 16), 0, 0, 0, message))
