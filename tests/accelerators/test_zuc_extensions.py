"""Tests for the ZUC future-work extensions: key cache + batching."""

import pytest

from repro.accelerators.zuc import (
    CachedKeyZucAccelerator,
    CompactRequest,
    OP_EEA3_CACHED,
    OP_EIA3_CACHED,
    OP_SET_KEY,
    eea3_encrypt,
    eia3_mac,
    make_compact_request,
    make_set_key,
    pack_batch,
    unpack_batch,
)
from repro.experiments.setups import Calibration, zuc_service
from repro.sim import Simulator
from repro.sw import BatchingZucCryptodev, CryptoOp, FldRControlPlane
from repro.testbed import make_remote_pair


class TestCompactFormat:
    def test_roundtrip(self):
        header = CompactRequest(OP_EEA3_CACHED, 7, count=5, bearer=2,
                                direction=1, length_bits=800,
                                request_id=0xABCD)
        again = CompactRequest.unpack(header.pack())
        assert (again.op, again.slot, again.count, again.bearer,
                again.direction, again.length_bits, again.request_id) == (
            OP_EEA3_CACHED, 7, 5, 2, 1, 800, 0xABCD)

    def test_header_is_16_bytes(self):
        assert len(CompactRequest(OP_SET_KEY, 0).pack()) == 16

    def test_slot_range_checked(self):
        with pytest.raises(ValueError):
            CompactRequest(OP_SET_KEY, 256)

    def test_header_savings_vs_baseline(self):
        """The point of key storage: 64 B -> 16 B per request."""
        from repro.accelerators.zuc import HEADER_SIZE
        assert HEADER_SIZE / 16 == 4.0


class TestBatchFraming:
    def test_roundtrip(self):
        entries = [b"first", b"second entry", b"x" * 300]
        assert unpack_batch(pack_batch(entries)) == entries

    def test_non_batch_returns_none(self):
        assert unpack_batch(b"\x00plain message") is None

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            pack_batch([])

    def test_truncated_batch_rejected(self):
        framed = pack_batch([b"abcdef"])
        with pytest.raises(ValueError):
            unpack_batch(framed[:-3])


def batched_service(sim, batch_size=16, batch_delay=5e-6):
    """A zuc_service variant running the extended accelerator."""
    from repro.experiments.setups import CLIENT_MAC, CLIENT_IP, \
        FLD_MAC, SERVER_IP
    from repro.sw import FldRClient, FldRuntime
    cal = Calibration()
    client, server = make_remote_pair(sim, nic_config=cal.nic_config(),
                                      client_core=cal.client_core(sim))
    client.add_vport_for_mac(1, CLIENT_MAC)
    server.add_vport_for_mac(2, FLD_MAC)
    runtime = FldRuntime(server, fld_config=cal.fld_config())
    control = FldRControlPlane(runtime, vport=2, mac=FLD_MAC, ip=SERVER_IP)
    accel = CachedKeyZucAccelerator(sim, runtime.fld, units=8,
                                    queue_map=control.queue_map)
    fld_client = FldRClient(client.driver, vport=1, mac=CLIENT_MAC,
                            ip=CLIENT_IP, buffer_size=16 * 1024)
    connection = fld_client.connect(control)
    dev = BatchingZucCryptodev(sim, connection, batch_size=batch_size,
                               batch_delay=batch_delay)
    batched_service.last_control = control
    batched_service.last_client = fld_client
    return accel, dev


class TestCachedKeyAccelerator:
    def test_ciphertext_correct_via_batched_driver(self):
        sim = Simulator()
        accel, dev = batched_service(sim)
        key = bytes(range(16))
        payload = b"\x5a" * 300
        done = {}

        def proc(sim):
            dev.submit(CryptoOp(CryptoOp.CIPHER, key, payload, count=2,
                                bearer=1))
            op = yield dev.completions.get()
            done["op"] = op

        sim.spawn(proc(sim))
        sim.run(until=0.1)
        assert done["op"].result == eea3_encrypt(key, 2, 1, 0, payload)
        assert accel.stats_set_key == 1
        assert dev.stats_keys_installed == 1

    def test_auth_via_cached_key(self):
        sim = Simulator()
        accel, dev = batched_service(sim)
        key = bytes(range(16))
        done = {}

        def proc(sim):
            dev.submit(CryptoOp(CryptoOp.AUTH, key, b"msg" * 40))
            op = yield dev.completions.get()
            done["op"] = op

        sim.spawn(proc(sim))
        sim.run(until=0.1)
        assert done["op"].mac == eia3_mac(key, 0, 0, 0, b"msg" * 40)

    def test_key_installed_once_for_many_ops(self):
        sim = Simulator()
        accel, dev = batched_service(sim)
        key = bytes(16)
        state = {"done": 0}

        def proc(sim):
            for _ in range(40):
                dev.submit(CryptoOp(CryptoOp.CIPHER, key, bytes(64)))
            while state["done"] < 40:
                yield dev.completions.get()
                state["done"] += 1

        sim.spawn(proc(sim))
        sim.run(until=0.1)
        assert state["done"] == 40
        assert accel.stats_set_key == 1
        assert accel.stats_batches >= 1

    def test_batching_reduces_message_count(self):
        sim = Simulator()
        accel, dev = batched_service(sim, batch_size=16)
        key = bytes(16)
        state = {"done": 0}

        def proc(sim):
            for _ in range(32):
                dev.submit(CryptoOp(CryptoOp.CIPHER, key, bytes(64)))
            while state["done"] < 32:
                yield dev.completions.get()
                state["done"] += 1

        sim.spawn(proc(sim))
        sim.run(until=0.1)
        # 32 ops in ~2 batch messages (plus the key install).
        assert dev.stats_batches_sent <= 4

    def test_unknown_slot_dropped(self):
        """A request against an uninstalled slot dies at the accelerator
        (the tenant-safety property of the key table)."""
        sim = Simulator()
        accel, dev = batched_service(sim)
        # Bypass the driver's auto-install by injecting a raw request.
        raw = make_compact_request(OP_EEA3_CACHED, 99, b"data")

        def proc(sim):
            dev.connection.post(raw)
            yield sim.timeout(0)

        sim.spawn(proc(sim))
        sim.run(until=0.05)
        assert accel.stats_unknown_slot == 1

    def test_baseline_protocol_still_works(self):
        """The extended accelerator remains wire-compatible."""
        from repro.sw import FldRZucCryptodev
        sim = Simulator()
        accel, dev = batched_service(sim)
        # A separate connection: each driver owns its response stream.
        connection = batched_service.last_client.connect(
            batched_service.last_control)
        baseline = FldRZucCryptodev(sim, connection)
        key = bytes(range(16))
        done = {}

        def proc(sim):
            baseline.submit(CryptoOp(CryptoOp.CIPHER, key, b"old" * 50))
            op = yield baseline.completions.get()
            done["op"] = op

        sim.spawn(proc(sim))
        sim.run(until=0.1)
        assert done["op"].result == eea3_encrypt(key, 0, 0, 0, b"old" * 50)
