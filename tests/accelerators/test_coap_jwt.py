"""Unit tests for the CoAP parser and JWT validation."""

import pytest

from repro.accelerators.iot import (
    CoapError,
    CoapMessage,
    JwtError,
    parse_token,
    sign_token,
    verify_token,
)
from repro.accelerators.iot.coap import (
    OPTION_CONTENT_FORMAT,
    OPTION_URI_PATH,
    POST,
    TYPE_ACK,
    TYPE_NON_CONFIRMABLE,
)


class TestCoap:
    def test_minimal_roundtrip(self):
        message = CoapMessage(code=POST, message_id=0x1234)
        again = CoapMessage.unpack(message.pack())
        assert again.code == POST
        assert again.message_id == 0x1234
        assert again.payload == b""

    def test_token_roundtrip(self):
        message = CoapMessage(token=b"\xde\xad\xbe\xef")
        assert CoapMessage.unpack(message.pack()).token == b"\xde\xad\xbe\xef"

    def test_payload_roundtrip(self):
        message = CoapMessage(payload=b"hello iot world")
        again = CoapMessage.unpack(message.pack())
        assert again.payload == b"hello iot world"

    def test_options_roundtrip(self):
        message = CoapMessage()
        message.add_option(OPTION_URI_PATH, b"sensors")
        message.add_option(OPTION_URI_PATH, b"temp")
        message.add_option(OPTION_CONTENT_FORMAT, b"\x00")
        again = CoapMessage.unpack(message.pack())
        assert again.option(OPTION_URI_PATH) == b"sensors"
        assert len([o for o in again.options if o[0] == OPTION_URI_PATH]) == 2

    def test_large_option_delta_extended_encoding(self):
        message = CoapMessage()
        message.add_option(2000, b"far")
        again = CoapMessage.unpack(message.pack())
        assert again.option(2000) == b"far"

    def test_large_option_value(self):
        message = CoapMessage()
        message.add_option(OPTION_URI_PATH, b"x" * 400)
        again = CoapMessage.unpack(message.pack())
        assert again.option(OPTION_URI_PATH) == b"x" * 400

    def test_everything_together(self):
        message = CoapMessage(code=POST, mtype=TYPE_ACK, message_id=7,
                              token=b"tok", payload=b"data!")
        message.add_option(OPTION_URI_PATH, b"auth")
        again = CoapMessage.unpack(message.pack())
        assert (again.mtype, again.token, again.payload) == (
            TYPE_ACK, b"tok", b"data!")

    def test_truncated_header_rejected(self):
        with pytest.raises(CoapError):
            CoapMessage.unpack(b"\x40\x01")

    def test_bad_version_rejected(self):
        data = bytearray(CoapMessage().pack())
        data[0] = (2 << 6) | (data[0] & 0x3F)
        with pytest.raises(CoapError):
            CoapMessage.unpack(bytes(data))

    def test_payload_marker_without_payload_rejected(self):
        data = CoapMessage().pack() + b"\xff"
        with pytest.raises(CoapError):
            CoapMessage.unpack(data)

    def test_long_token_rejected(self):
        with pytest.raises(CoapError):
            CoapMessage(token=b"123456789")


class TestJwt:
    KEY = b"tenant-secret-key"

    def test_sign_and_verify(self):
        token = sign_token({"sub": "device-1", "iat": 1000}, self.KEY)
        claims = verify_token(token, self.KEY)
        assert claims == {"sub": "device-1", "iat": 1000}

    def test_wrong_key_rejected(self):
        token = sign_token({"sub": "device-1"}, self.KEY)
        assert verify_token(token, b"other-key") is None

    def test_tampered_payload_rejected(self):
        token = sign_token({"sub": "device-1"}, self.KEY)
        header, payload, signature = token.split(b".")
        evil = sign_token({"sub": "attacker"}, b"attacker-key").split(b".")[1]
        assert verify_token(header + b"." + evil + b"." + signature,
                            self.KEY) is None

    def test_tampered_signature_rejected(self):
        token = bytearray(sign_token({"a": 1}, self.KEY))
        token[-1] ^= 0x41
        assert verify_token(bytes(token), self.KEY) is None

    def test_structure_parse(self):
        token = sign_token({"x": [1, 2, 3]}, self.KEY)
        header, claims, signature = parse_token(token)
        assert header["alg"] == "HS256"
        assert claims["x"] == [1, 2, 3]
        assert len(signature) == 32

    def test_malformed_token_raises(self):
        with pytest.raises(JwtError):
            parse_token(b"not-a-jwt")
        with pytest.raises(JwtError):
            parse_token(b"a.b")

    def test_garbage_segments_return_none(self):
        assert verify_token(b"!!!.???.###", self.KEY) is None

    def test_non_hs256_rejected(self):
        import base64, json
        header = base64.urlsafe_b64encode(
            json.dumps({"alg": "none"}).encode()).rstrip(b"=")
        body = base64.urlsafe_b64encode(b"{}").rstrip(b"=")
        token = header + b"." + body + b"."
        assert verify_token(token, self.KEY) is None
