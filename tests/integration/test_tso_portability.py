"""Integration: TSO/LSO offload, NIC portability, end-to-end conservation."""

import pytest

from repro.host import CpuCore
from repro.net import Flow, Ipv4, PROTO_TCP, Tcp
from repro.net.parse import parse_frame
from repro.nic import NicConfig, SegmentationOffload
from repro.sim import Simulator
from repro.testbed import make_remote_pair

CLIENT_MAC = "02:00:00:00:00:01"
SERVER_MAC = "02:00:00:00:00:02"


def tcp_megaframe(payload_size):
    flow = Flow(CLIENT_MAC, SERVER_MAC, "10.0.0.1", "10.0.0.2",
                5000, 5201, proto=PROTO_TCP)
    payload = (bytes(range(256)) * ((payload_size // 256) + 1))
    return flow.make_packet(payload[:payload_size])


class TestSegmentationOffload:
    def test_segments_cover_payload_with_correct_sequences(self):
        offload = SegmentationOffload()
        packet = tcp_megaframe(4000)
        base_seq = packet.find(Tcp).seq
        segments = offload.segment(packet, mss=1460)
        assert len(segments) == 3
        offset = 0
        for segment in segments:
            tcp = segment.find(Tcp)
            assert tcp.seq == (base_seq + offset) & 0xFFFFFFFF
            offset += len(segment.payload)
        assert offset == 4000
        assert b"".join(s.payload for s in segments) == packet.payload

    def test_segment_checksums_valid(self):
        offload = SegmentationOffload()
        segments = offload.segment(tcp_megaframe(5000), mss=1460)
        for segment in segments:
            ip = segment.find(Ipv4)
            assert segment.find(Tcp).verify(ip.src, ip.dst,
                                            segment.payload)

    def test_ip_idents_advance(self):
        offload = SegmentationOffload()
        segments = offload.segment(tcp_megaframe(4000), mss=1000)
        idents = [s.find(Ipv4).ident for s in segments]
        assert len(set(idents)) == len(idents)

    def test_small_frame_passes_through(self):
        offload = SegmentationOffload()
        packet = tcp_megaframe(100)
        assert offload.segment(packet, mss=1460) == [packet]

    def test_non_tcp_passes_through(self):
        offload = SegmentationOffload()
        flow = Flow(CLIENT_MAC, SERVER_MAC, "1.1.1.1", "2.2.2.2", 1, 2)
        packet = flow.make_packet(bytes(3000))
        assert offload.segment(packet, mss=1000) == [packet]

    def test_invalid_mss_rejected(self):
        with pytest.raises(ValueError):
            SegmentationOffload().segment(tcp_megaframe(3000), mss=0)


class TestTsoEndToEnd:
    def test_one_descriptor_many_wire_packets(self):
        sim = Simulator()
        client, server = make_remote_pair(
            sim, client_core=CpuCore(sim, os_jitter_probability=0))
        client.add_vport_for_mac(1, CLIENT_MAC)
        server.add_vport_for_mac(1, SERVER_MAC)
        sender = client.driver.create_eth_qp(vport=1, buffer_size=16384)
        receiver = server.driver.create_eth_qp(vport=1, buffer_size=2048)
        receiver.post_rx_buffers(64)
        received = []
        receiver.on_receive = lambda data, cqe: received.append(data)

        frame = tcp_megaframe(8000)
        sender.send_tso(frame.to_bytes(), mss=1460)
        sim.run(until=0.01)

        # One WQE...
        assert sender.sq.stats_wqes == 1
        # ...six MSS-sized wire packets, all delivered and valid.
        assert len(received) == 6
        total = b""
        for data in received:
            packet = parse_frame(data)
            ip = packet.find(Ipv4)
            assert packet.find(Tcp).verify(ip.src, ip.dst, packet.payload)
            total += packet.payload
        assert total == frame.payload
        assert client.nic.lso.stats_lso_frames == 1
        assert client.nic.lso.stats_segments == 6


class TestNicPortability:
    """§6 Limitations: the ConnectX-5 design was 'successfully tested
    against ConnectX-6 Dx' — the same FLD binding must work unchanged on
    a differently-parameterized NIC."""

    def test_fld_runs_unchanged_on_cx6dx_profile(self):
        from repro.experiments.setups import Calibration, flde_echo_remote

        cal = Calibration()
        # ConnectX-6 Dx profile: 100 GbE port, faster pipeline.
        cal.nic_config = lambda: NicConfig(
            port_rate_bps=100e9, port_latency=cal.wire_latency,
            processing_delay=15e-9, rdma_mtu=cal.rdma_mtu,
        )
        sim = Simulator()
        setup = flde_echo_remote(sim, cal)
        loadgen = setup.loadgen

        def run(sim):
            yield from loadgen.run_closed_loop(frame_size=512, count=40)
            yield from loadgen.drain()

        sim.spawn(run(sim))
        sim.run(until=1.0)
        assert loadgen.stats_received == 40
        assert setup.runtime.fld.errors.stats_reported == 0


class TestConservation:
    def test_every_packet_is_accounted_for(self):
        """Conservation invariant under overload: sent == delivered +
        every drop counter along the path."""
        from repro.experiments.setups import Calibration, flde_echo_remote

        sim = Simulator()
        setup = flde_echo_remote(sim, Calibration())
        loadgen = setup.loadgen
        count = 1500

        def run(sim):
            # Unpaced burst of small frames: guaranteed overload.
            yield from loadgen.run_open_loop([64] * count)
            yield from loadgen.drain()

        sim.spawn(run(sim))
        sim.run(until=2.0)

        fld = setup.runtime.fld
        drops = (
            setup.server.nic.stats_rx_dropped_inbox
            + setup.server.nic.stats_rx_dropped_no_desc
            + setup.client.nic.stats_rx_dropped_inbox
            + setup.client.nic.stats_rx_dropped_no_desc
            + fld.rx_stream.stats_dropped
            + setup.accel.stats_dropped
        )
        assert loadgen.stats_sent == count
        assert loadgen.stats_received + drops == count
