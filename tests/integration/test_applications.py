"""Integration: the three paper applications end to end (§7)."""

import pytest

from repro.accelerators.zuc import ZucAccelerator, eea3_encrypt
from repro.experiments.defrag import run as run_defrag
from repro.experiments.iot import (
    drop_invalid_tokens,
    isolation,
)
from repro.experiments.setups import Calibration, zuc_service
from repro.sim import Simulator
from repro.sw import CryptoOp, FldRClient, FldRZucCryptodev


class TestZucService:
    def test_ciphertext_correct_end_to_end(self):
        sim = Simulator()
        setup = zuc_service(sim)
        dev = FldRZucCryptodev(sim, setup.connection)
        key = bytes(range(16))
        payload = b"\xa5" * 700
        done = {}

        def proc(sim):
            dev.submit(CryptoOp(CryptoOp.CIPHER, key, payload, count=3,
                                bearer=1, direction=1))
            op = yield dev.completions.get()
            done["op"] = op

        sim.spawn(proc(sim))
        sim.run(until=0.1)
        op = done["op"]
        assert op.result == eea3_encrypt(key, 3, 1, 1, payload)

    def test_auth_op_end_to_end(self):
        from repro.accelerators.zuc import eia3_mac
        sim = Simulator()
        setup = zuc_service(sim)
        dev = FldRZucCryptodev(sim, setup.connection)
        key = bytes(range(16))
        done = {}

        def proc(sim):
            dev.submit(CryptoOp(CryptoOp.AUTH, key, b"sign me" * 10,
                                count=1))
            op = yield dev.completions.get()
            done["op"] = op

        sim.spawn(proc(sim))
        sim.run(until=0.1)
        assert done["op"].mac == eia3_mac(key, 1, 0, 0, b"sign me" * 10)

    def test_two_clients_share_the_accelerator(self):
        """Two connections through the shared MPRQ; replies route by
        QPN back to the right client (§6's interleaving)."""
        sim = Simulator()
        setup = zuc_service(sim)
        second_client = FldRClient(setup.client.driver, vport=1,
                                   mac="02:00:00:00:00:01",
                                   ip="10.0.0.1", buffer_size=16 * 1024)
        connection2 = second_client.connect(setup.control)
        dev1 = FldRZucCryptodev(sim, setup.connection)
        dev2 = FldRZucCryptodev(sim, connection2)
        key = bytes(range(16))
        results = {}

        def client1(sim):
            dev1.submit(CryptoOp(CryptoOp.CIPHER, key, b"\x01" * 2000))
            op = yield dev1.completions.get()
            results["one"] = op

        def client2(sim):
            dev2.submit(CryptoOp(CryptoOp.CIPHER, key, b"\x02" * 2000))
            op = yield dev2.completions.get()
            results["two"] = op

        sim.spawn(client1(sim))
        sim.spawn(client2(sim))
        sim.run(until=0.1)
        assert results["one"].result == eea3_encrypt(key, 0, 0, 0,
                                                     b"\x01" * 2000)
        assert results["two"].result == eea3_encrypt(key, 0, 0, 0,
                                                     b"\x02" * 2000)

    def test_pipelined_throughput_exceeds_cpu(self):
        sim = Simulator()
        setup = zuc_service(sim)
        dev = FldRZucCryptodev(sim, setup.connection)
        key = bytes(16)
        state = {"done": 0}

        def proc(sim):
            for _ in range(32):
                dev.submit(CryptoOp(CryptoOp.CIPHER, key, bytes(512)))
            while state["done"] < 32:
                yield dev.completions.get()
                state["done"] += 1

        sim.spawn(proc(sim))
        sim.run(until=0.1)
        assert state["done"] == 32


class TestDefragSmoke:
    def test_hw_beats_sw_by_a_wide_margin(self):
        sw = run_defrag("sw-defrag", rounds=15)
        hw = run_defrag("hw-defrag", rounds=15)
        assert hw["goodput_gbps"] > sw["goodput_gbps"] * 4
        assert sw["active_cores"] == 1
        assert hw["active_cores"] >= 4

    def test_reassembled_payloads_intact(self):
        result = run_defrag("hw-defrag", rounds=10)
        # Every datagram the receivers counted was a whole, parseable
        # TCP segment (the receiver discards anything else).
        assert result["datagrams"] == result["accel_reassembled"]


class TestIotSmoke:
    def test_forged_tokens_never_reach_host(self):
        result = drop_invalid_tokens(count=100)
        assert result["valid"] == result["delivered_to_host"] == 50
        assert result["invalid"] == 50

    def test_shaping_equalizes_tenants(self):
        unshaped = isolation(shaped=False, duration=1.5e-3)
        shaped = isolation(shaped=True, duration=4e-3)
        gap_unshaped = abs(unshaped["tenant_b_gbps"]
                           - unshaped["tenant_a_gbps"])
        gap_shaped = abs(shaped["tenant_b_gbps"] - shaped["tenant_a_gbps"])
        assert gap_shaped < gap_unshaped / 2
