"""Integration: one-sided RDMA WRITE through the full stack.

The NIC's hardware transport supports RDMA WRITE (the offload class
Table 1 credits FLD with); data lands directly in the remote registered
memory region — no receive descriptor, no receive CQE, no remote CPU.
"""

import pytest

from repro.sim import Simulator
from repro.testbed import make_remote_pair

CLIENT_MAC = "02:00:00:00:00:01"
SERVER_MAC = "02:00:00:00:00:02"


def build(sim):
    client, server = make_remote_pair(sim)
    client.add_vport_for_mac(1, CLIENT_MAC)
    server.add_vport_for_mac(1, SERVER_MAC)
    cep = client.driver.create_rc_endpoint(1, CLIENT_MAC, "10.0.0.1",
                                           buffer_size=8192)
    sep = server.driver.create_rc_endpoint(1, SERVER_MAC, "10.0.0.2",
                                           buffer_size=8192)
    cep.post_rx_buffers(64)
    sep.post_rx_buffers(64)
    cep.connect(SERVER_MAC, "10.0.0.2", sep.qpn)
    sep.connect(CLIENT_MAC, "10.0.0.1", cep.qpn)
    return client, server, cep, sep


class TestRdmaWrite:
    def test_single_segment_write_lands_in_region(self):
        sim = Simulator()
        _c, _s, cep, sep = build(sim)
        addr, rkey, read = sep.register_mr(4096)
        payload = b"one-sided write!" * 4

        def proc(sim):
            yield cep.post_write(payload, addr, rkey)

        sim.spawn(proc(sim))
        sim.run(until=0.01)
        assert read(len(payload)) == payload

    def test_multi_segment_write(self):
        sim = Simulator()
        _c, _s, cep, sep = build(sim)
        addr, rkey, read = sep.register_mr(8192)
        payload = bytes(range(256)) * 20  # 5120 B -> 5 segments

        def proc(sim):
            yield cep.post_write(payload, addr, rkey)

        sim.spawn(proc(sim))
        sim.run(until=0.01)
        assert read(len(payload)) == payload
        assert sep.qp.stats_writes_received == 5

    def test_write_consumes_no_receive_descriptor(self):
        sim = Simulator()
        _c, _s, cep, sep = build(sim)
        addr, rkey, _read = sep.register_mr(4096)
        available_before = sep.rq.available
        cqes_before = sep.rx_cq.stats_cqes

        def proc(sim):
            yield cep.post_write(b"x" * 2048, addr, rkey)

        sim.spawn(proc(sim))
        sim.run(until=0.01)
        assert sep.rq.available == available_before
        assert sep.rx_cq.stats_cqes == cqes_before

    def test_write_with_offset_into_region(self):
        sim = Simulator()
        _c, _s, cep, sep = build(sim)
        addr, rkey, read = sep.register_mr(4096)

        def proc(sim):
            yield cep.post_write(b"tail", addr + 1000, rkey)

        sim.spawn(proc(sim))
        sim.run(until=0.01)
        assert read(4, offset=1000) == b"tail"
        assert read(4, offset=0) == bytes(4)  # start untouched

    def test_bad_rkey_rejected(self):
        sim = Simulator()
        _c, _s, cep, sep = build(sim)
        addr, rkey, read = sep.register_mr(4096)

        def proc(sim):
            cep.post_write(b"forged", addr, rkey + 999, signaled=False)
            yield sim.timeout(0)

        sim.spawn(proc(sim))
        sim.run(until=0.01)
        assert read(6) == bytes(6)  # nothing written
        assert sep.qp.stats_write_protection_errors >= 1

    def test_out_of_bounds_write_rejected(self):
        sim = Simulator()
        _c, _s, cep, sep = build(sim)
        addr, rkey, read = sep.register_mr(128)

        def proc(sim):
            cep.post_write(b"y" * 256, addr, rkey, signaled=False)
            yield sim.timeout(0)

        sim.spawn(proc(sim))
        sim.run(until=0.01)
        assert read(128) == bytes(128)
        assert sep.qp.stats_write_protection_errors >= 1

    def test_deregistered_region_rejected(self):
        sim = Simulator()
        _c, server, cep, sep = build(sim)
        addr, rkey, read = sep.register_mr(4096)
        server.nic.rdma.deregister_mr(rkey)

        def proc(sim):
            cep.post_write(b"stale", addr, rkey, signaled=False)
            yield sim.timeout(0)

        sim.spawn(proc(sim))
        sim.run(until=0.01)
        assert read(5) == bytes(5)

    def test_write_then_send_ordering(self):
        """A WRITE followed by a SEND on the same QP: the receiver sees
        the written data before the notification message (RC ordering)."""
        sim = Simulator()
        _c, _s, cep, sep = build(sim)
        addr, rkey, read = sep.register_mr(4096)
        seen = {}

        def receiver(sim):
            message, _cqe = yield sep.messages.get()
            seen["data_at_notify"] = read(9)
            seen["message"] = message

        def sender(sim):
            cep.post_write(b"bulk data", addr, rkey, signaled=False)
            yield cep.post_send(b"done")

        sim.spawn(receiver(sim))
        sim.spawn(sender(sim))
        sim.run(until=0.01)
        assert seen["message"] == b"done"
        assert seen["data_at_notify"] == b"bulk data"
