"""Integration: the conventional host-driver data path, end to end.

These tests exercise the full substrate stack without FLD: software
driver rings in host memory, doorbells over PCIe, NIC DMA, eSwitch
steering, the wire, and the remote side's receive path.
"""

import pytest

from repro.host import CpuCore, EchoApp, LoadGenerator
from repro.net import Flow
from repro.sim import Simulator
from repro.testbed import connect, make_local_node, make_remote_pair

CLIENT_MAC = "02:00:00:00:00:01"
SERVER_MAC = "02:00:00:00:00:02"


def build_remote_echo(sim, use_mmio_wqe=False, jitter=0.0):
    core = CpuCore(sim, os_jitter_probability=jitter)
    client, server = make_remote_pair(
        sim, client_core=CpuCore(sim, os_jitter_probability=0.0),
        server_core=core,
    )
    client.add_vport_for_mac(1, CLIENT_MAC)
    server.add_vport_for_mac(1, SERVER_MAC)

    client_qp = client.driver.create_eth_qp(vport=1,
                                            use_mmio_wqe=use_mmio_wqe)
    client_qp.post_rx_buffers(256)
    server_qp = server.driver.create_eth_qp(vport=1)
    server_qp.post_rx_buffers(256)

    echo = EchoApp(server_qp)
    flow = Flow(CLIENT_MAC, SERVER_MAC, "10.0.0.1", "10.0.0.2", 7000, 7001)
    loadgen = LoadGenerator(sim, client_qp, flow)
    return client, server, loadgen, echo


class TestRemoteEcho:
    def test_all_packets_echoed(self):
        sim = Simulator()
        _c, _s, loadgen, echo = build_remote_echo(sim)

        def run(sim):
            yield from loadgen.run_closed_loop(frame_size=256, count=50)
            yield from loadgen.drain()

        sim.spawn(run(sim))
        sim.run(until=1.0)
        assert echo.stats_echoed == 50
        assert loadgen.stats_received == 50
        assert len(loadgen.latency) == 50

    def test_latency_is_physical(self):
        """RTT must exceed 2x wire latency + 2x PCIe round trips."""
        sim = Simulator()
        _c, _s, loadgen, _echo = build_remote_echo(sim)

        def run(sim):
            yield from loadgen.run_closed_loop(frame_size=64, count=20)
            yield from loadgen.drain()

        sim.spawn(run(sim))
        sim.run(until=1.0)
        # 2 wire crossings at 500 ns each is the hard floor.
        assert loadgen.latency.median > 1e-6
        assert loadgen.latency.median < 20e-6

    def test_mmio_wqe_skips_descriptor_fetch(self):
        sim = Simulator()
        client, _s, loadgen, _echo = build_remote_echo(sim, use_mmio_wqe=True)

        def run(sim):
            yield from loadgen.run_closed_loop(frame_size=128, count=10)
            yield from loadgen.drain()

        sim.spawn(run(sim))
        sim.run(until=1.0)
        sq = loadgen.qp.sq
        assert sq.stats_mmio_wqes == 10
        assert sq.stats_wqe_fetches == 0
        assert loadgen.stats_received == 10

    def test_regular_path_fetches_descriptors(self):
        sim = Simulator()
        _c, _s, loadgen, _echo = build_remote_echo(sim)

        def run(sim):
            yield from loadgen.run_closed_loop(frame_size=128, count=10)
            yield from loadgen.drain()

        sim.spawn(run(sim))
        sim.run(until=1.0)
        assert loadgen.qp.sq.stats_wqe_fetches == 10

    def test_throughput_bounded_by_wire(self):
        sim = Simulator()
        _c, _s, loadgen, _echo = build_remote_echo(sim)
        sizes = [1024] * 300

        def run(sim):
            yield from loadgen.run_open_loop(sizes)
            yield from loadgen.drain()

        sim.spawn(run(sim))
        sim.run(until=1.0)
        assert loadgen.stats_received == 300
        gbps = loadgen.rx_meter.gbps(wire_overhead_per_packet=24)
        assert gbps <= 25.0
        assert gbps > 5.0  # and the path is not pathologically slow


class TestLocalLoopback:
    def test_vport_to_vport_echo(self):
        """Two vPorts on one NIC, eSwitch loopback (the local setup)."""
        sim = Simulator()
        node = make_local_node(sim)
        node.add_vport_for_mac(1, CLIENT_MAC)
        node.add_vport_for_mac(2, SERVER_MAC)

        gen_qp = node.driver.create_eth_qp(vport=1)
        gen_qp.post_rx_buffers(128)
        echo_qp = node.driver.create_eth_qp(vport=2)
        echo_qp.post_rx_buffers(128)
        echo = EchoApp(echo_qp)

        flow = Flow(CLIENT_MAC, SERVER_MAC, "10.0.0.1", "10.0.0.2", 1, 2)
        loadgen = LoadGenerator(sim, gen_qp, flow)

        def run(sim):
            yield from loadgen.run_closed_loop(frame_size=512, count=30)
            yield from loadgen.drain()

        sim.spawn(run(sim))
        sim.run(until=1.0)
        assert echo.stats_echoed == 30
        assert loadgen.stats_received == 30
        # Traffic never touched the wire.
        assert node.nic.port.stats_tx_packets == 0
        assert node.nic.eswitch.stats_loopback >= 60

    def test_unmatched_mac_goes_to_uplink(self):
        sim = Simulator()
        a = make_local_node(sim, "a")
        b = make_local_node(sim, "b")
        connect(a, b)
        a.add_vport_for_mac(1, CLIENT_MAC)
        qp = a.driver.create_eth_qp(vport=1)
        flow = Flow(CLIENT_MAC, "02:00:00:00:99:99", "1.1.1.1", "2.2.2.2",
                    1, 2)
        qp.send(flow.make_packet(b"x" * 64, fill_checksums=False).to_bytes())
        sim.run(until=0.01)
        assert a.nic.port.stats_tx_packets == 1
        assert b.nic.port.stats_rx_packets == 1


class TestRdmaHostToHost:
    def _build(self, sim):
        client, server = make_remote_pair(sim)
        client.add_vport_for_mac(1, CLIENT_MAC)
        server.add_vport_for_mac(1, SERVER_MAC)
        cep = client.driver.create_rc_endpoint(
            1, CLIENT_MAC, "10.0.0.1", buffer_size=2048)
        sep = server.driver.create_rc_endpoint(
            1, SERVER_MAC, "10.0.0.2", buffer_size=2048)
        cep.post_rx_buffers(128)
        sep.post_rx_buffers(128)
        cep.connect(SERVER_MAC, "10.0.0.2", sep.qpn)
        sep.connect(CLIENT_MAC, "10.0.0.1", cep.qpn)
        return client, server, cep, sep

    def test_small_message_send(self):
        sim = Simulator()
        _c, _s, cep, sep = self._build(sim)
        got = []

        def receiver(sim):
            message, cqe = yield sep.messages.get()
            got.append(message)

        def sender(sim):
            yield cep.post_send(b"hello rdma")

        sim.spawn(receiver(sim))
        sim.spawn(sender(sim))
        sim.run(until=0.1)
        assert got == [b"hello rdma"]

    def test_multi_segment_message(self):
        """A message larger than the RoCE MTU segments and reassembles."""
        sim = Simulator()
        _c, _s, cep, sep = self._build(sim)
        payload = bytes(range(256)) * 20  # 5120 B > 1024 MTU
        got = []

        def receiver(sim):
            message, _cqe = yield sep.messages.get()
            got.append(message)

        def sender(sim):
            yield cep.post_send(payload)

        sim.spawn(receiver(sim))
        sim.spawn(sender(sim))
        sim.run(until=0.1)
        assert got and got[0] == payload
        # 5 segments for 5120 B at 1024 B MTU.
        assert cep.qp.stats_sent_segments == 5

    def test_send_completion_fires_after_ack(self):
        sim = Simulator()
        _c, _s, cep, sep = self._build(sim)
        times = {}

        def sender(sim):
            start = sim.now
            yield cep.post_send(b"x" * 512)
            times["ack"] = sim.now - start

        sim.spawn(sender(sim))
        sim.run(until=0.1)
        # Completion requires a full round trip over the wire.
        assert times["ack"] > 1e-6

    def test_bidirectional_messages(self):
        sim = Simulator()
        _c, _s, cep, sep = self._build(sim)
        results = {}

        def server_proc(sim):
            message, _ = yield sep.messages.get()
            yield sep.post_send(message.upper())

        def client_proc(sim):
            yield cep.post_send(b"ping")
            reply, _ = yield cep.messages.get()
            results["reply"] = reply

        sim.spawn(server_proc(sim))
        sim.spawn(client_proc(sim))
        sim.run(until=0.1)
        assert results.get("reply") == b"PING"
