"""Integration: FLD end-to-end data paths (FLD-E and FLD-R).

These exercise the reproduction's core claim: an accelerator driving a
commodity NIC through FLD's compressed on-die state, with the NIC's PCIe
reads answered by on-the-fly descriptor generation.
"""

import pytest

from repro.accelerators import EchoAccelerator, RdmaEchoAccelerator
from repro.host import CpuCore, LoadGenerator
from repro.net import Flow
from repro.sim import Simulator
from repro.sw import FldRuntime
from repro.testbed import make_local_node, make_remote_pair

CLIENT_MAC = "02:00:00:00:00:01"
FLD_MAC = "02:00:00:00:00:99"


def build_flde_echo(sim, use_mmio=True, units=1):
    client, server = make_remote_pair(
        sim, client_core=CpuCore(sim, os_jitter_probability=0.0))
    client.add_vport_for_mac(1, CLIENT_MAC)
    server.add_vport_for_mac(2, FLD_MAC)
    runtime = FldRuntime(server)
    rq = runtime.create_rx_queue(vport=2)
    txq = runtime.create_eth_tx_queue(vport=2, use_mmio=use_mmio)
    accel = EchoAccelerator(sim, runtime.fld, units=units, tx_queue=txq)
    client_qp = client.driver.create_eth_qp(vport=1)
    client_qp.post_rx_buffers(512)
    flow = Flow(CLIENT_MAC, FLD_MAC, "10.0.0.1", "10.0.0.2", 7000, 7001)
    loadgen = LoadGenerator(sim, client_qp, flow)
    return client, server, runtime, accel, loadgen


class TestFldEEcho:
    def test_packets_flow_through_accelerator(self):
        sim = Simulator()
        _c, _s, runtime, accel, loadgen = build_flde_echo(sim)

        def run(sim):
            yield from loadgen.run_closed_loop(frame_size=256, count=40)
            yield from loadgen.drain()

        sim.spawn(run(sim))
        sim.run(until=1.0)
        assert loadgen.stats_received == 40
        assert accel.stats_processed == 40
        assert runtime.fld.errors.stats_reported == 0

    def test_wqe_by_mmio_avoids_ring_reads(self):
        sim = Simulator()
        _c, _s, runtime, _accel, loadgen = build_flde_echo(sim, use_mmio=True)

        def run(sim):
            yield from loadgen.run_closed_loop(frame_size=128, count=10)
            yield from loadgen.drain()

        sim.spawn(run(sim))
        sim.run(until=1.0)
        assert runtime.fld.tx.stats_wqe_reads == 0

    def test_doorbell_mode_generates_wqes_on_the_fly(self):
        sim = Simulator()
        _c, _s, runtime, _accel, loadgen = build_flde_echo(sim,
                                                           use_mmio=False)

        def run(sim):
            yield from loadgen.run_closed_loop(frame_size=128, count=10)
            yield from loadgen.drain()

        sim.spawn(run(sim))
        sim.run(until=1.0)
        # The NIC read WQEs from the FLD BAR; FLD generated them from
        # 8-byte compressed descriptors.
        assert runtime.fld.tx.stats_wqe_reads == 10
        assert loadgen.stats_received == 10

    def test_tx_resources_recycled(self):
        """Descriptors, buffers and credits all return after completions."""
        sim = Simulator()
        _c, _s, runtime, _accel, loadgen = build_flde_echo(sim)

        def run(sim):
            yield from loadgen.run_closed_loop(frame_size=512, count=100)
            yield from loadgen.drain()

        sim.spawn(run(sim))
        sim.run(until=1.0)
        tx = runtime.fld.tx
        assert tx.descriptors.free_slots == tx.descriptors.capacity
        assert tx.buffers.free_chunks == tx.buffers.num_chunks
        assert tx.credits.available(0) == tx.credits.capacity(0)

    def test_rx_buffers_recycled_in_order(self):
        """Sustained traffic must keep recycling MPRQ buffers (§5.2)."""
        sim = Simulator()
        _c, _s, runtime, _accel, loadgen = build_flde_echo(sim)

        def run(sim):
            yield from loadgen.run_closed_loop(frame_size=1500, count=400)
            yield from loadgen.drain()

        sim.spawn(run(sim))
        sim.run(until=1.0)
        binding = runtime.fld.rx.binding(0)
        # 400 x 1500 B packets over 128 KiB buffers require many recycles.
        assert binding.stats_recycled > 2
        assert loadgen.stats_received == 400

    def test_latency_reasonable(self):
        sim = Simulator()
        _c, _s, _runtime, _accel, loadgen = build_flde_echo(sim)

        def run(sim):
            yield from loadgen.run_closed_loop(frame_size=64, count=50)
            yield from loadgen.drain()

        sim.spawn(run(sim))
        sim.run(until=1.0)
        assert 1e-6 < loadgen.latency.median < 20e-6

    def test_throughput_large_frames_near_line_rate(self):
        sim = Simulator()
        _c, _s, _runtime, _accel, loadgen = build_flde_echo(sim)

        def run(sim):
            yield from loadgen.run_open_loop([1500] * 500)
            yield from loadgen.drain()

        sim.spawn(run(sim))
        sim.run(until=1.0)
        assert loadgen.rx_meter.gbps(24) > 15.0


class TestFldRPath:
    def _build(self, sim):
        client, server = make_remote_pair(sim)
        client.add_vport_for_mac(1, CLIENT_MAC)
        server.add_vport_for_mac(2, FLD_MAC)
        runtime = FldRuntime(server)
        qp, txq = runtime.create_fldr_qp(vport=2, local_mac=FLD_MAC,
                                         local_ip="10.0.0.2")
        accel = RdmaEchoAccelerator(sim, runtime.fld, units=1, tx_queue=txq)
        cep = client.driver.create_rc_endpoint(1, CLIENT_MAC, "10.0.0.1",
                                               buffer_size=4096)
        cep.post_rx_buffers(256)
        cep.connect(FLD_MAC, "10.0.0.2", qp.qpn)
        qp.connect(CLIENT_MAC, "10.0.0.1", cep.qpn)
        return runtime, accel, cep, qp

    def test_single_segment_message_roundtrip(self):
        sim = Simulator()
        _runtime, _accel, cep, _qp = self._build(sim)
        result = {}

        def proc(sim):
            yield cep.post_send(b"fld-r ping")
            reply, _ = yield cep.messages.get()
            result["reply"] = reply

        sim.spawn(proc(sim))
        sim.run(until=0.1)
        assert result["reply"] == b"fld-r ping"

    def test_multi_segment_message_roundtrip(self):
        """Messages above the RoCE MTU segment in the NIC's transport —
        the hardware segmentation FLD gets for free (§8.1.2)."""
        sim = Simulator()
        _runtime, _accel, cep, qp = self._build(sim)
        payload = bytes(range(256)) * 16  # 4096 B -> 4 segments at 1024 MTU
        result = {}

        def proc(sim):
            yield cep.post_send(payload)
            reply, _ = yield cep.messages.get()
            result["reply"] = reply

        sim.spawn(proc(sim))
        sim.run(until=0.1)
        assert result["reply"] == payload
        assert qp.stats_received_segments == 4

    def test_pipelined_messages(self):
        sim = Simulator()
        _runtime, accel, cep, _qp = self._build(sim)
        replies = []

        def proc(sim):
            events = [cep.post_send(bytes([i]) * 512) for i in range(20)]
            for _ in range(20):
                reply, _ = yield cep.messages.get()
                replies.append(reply)

        sim.spawn(proc(sim))
        sim.run(until=0.1)
        assert len(replies) == 20
        assert sorted(r[0] for r in replies) == list(range(20))

    def test_fld_memory_footprint_small(self):
        """The whole point: FLD state fits in ~1 MiB of on-die SRAM."""
        sim = Simulator()
        runtime, _accel, _cep, _qp = self._build(sim)
        memory = runtime.fld.on_die_memory()
        assert memory["total"] < 1.5 * 1024 * 1024
        assert memory["rx_ring"] == 0  # receive ring lives in host memory
