"""End-to-end latency attribution: spans through the full datapath.

The acceptance bar for the observability slice: run echo with every
packet traced, and (a) each traced packet's per-stage sums reconcile
with its end-to-end latency within 1%, (b) the invariant auditor finds
nothing — zero orphaned spans, no credit/buffer/descriptor leaks, no
queue residue — and (c) sampling and the disabled NULL path behave.
"""

import pytest

from repro.telemetry import Telemetry
from repro.telemetry.audit import assert_clean
from repro.telemetry.latency import STAGE_ORDER
from repro.telemetry.runner import (
    LATENCY_TRACEABLE,
    latency_experiments,
    run_latency,
)
from repro.telemetry.spans import attribute_trace


class TestEchoAttribution:
    @pytest.fixture(scope="class")
    def summary(self):
        return run_latency("echo", count=60)

    def test_every_packet_reconciles_within_1pct(self, summary):
        reconciliation = summary["report"]["reconciliation"]
        assert reconciliation["within_1pct"], \
            f"max error {reconciliation['max_error']:.4%}"

    def test_all_traces_finish_with_zero_orphans(self, summary):
        report = summary["report"]
        assert report["traces"] == 60
        assert report["unfinished"] == 0
        assert report["orphaned_spans"] == 0

    def test_audit_is_clean(self, summary):
        assert_clean([])  # sanity: empty list passes
        assert summary["violations"] == []

    def test_stage_rows_cover_the_flde_path(self, summary):
        stages = {r["stage"] for r in summary["report"]["stages"]}
        # The FLD-E echo path crosses at least these stages.
        for expected in ("pcie.doorbell", "nic.tx", "wire", "nic.rx",
                         "pcie.dma_write", "fld.rx", "accel", "fld.tx",
                         "pcie.cqe_write", "host.rx"):
            assert expected in stages, f"missing stage {expected!r}"
        named = stages - {"(unattributed)"}
        assert named <= set(STAGE_ORDER)

    def test_e2e_matches_experiment_result(self, summary):
        # The span-derived end-to-end median must agree with the
        # experiment's own RTT measurement (same packets, same clock).
        assert summary["report"]["e2e"]["p50_us"] == pytest.approx(
            summary["result"]["median_us"], rel=0.05)


class TestSamplingAndScope:
    def test_sample_rate_traces_one_in_n(self):
        summary = run_latency("echo", count=60, sample_rate=10)
        assert summary["traces"] == 6
        assert summary["violations"] == []

    def test_cpu_echo_attributes_cleanly(self):
        summary = run_latency("cpu-echo", count=40)
        assert summary["report"]["reconciliation"]["within_1pct"]
        assert summary["violations"] == []
        stages = {r["stage"] for r in summary["report"]["stages"]}
        # The CPU baseline never touches the FLD engines.
        assert "fld.rx" not in stages
        assert "accel" not in stages

    def test_unknown_experiment_lists_choices(self):
        with pytest.raises(ValueError, match="choose from"):
            run_latency("nope")

    def test_registry_names_every_experiment(self):
        assert set(latency_experiments()) == set(LATENCY_TRACEABLE)

    def test_json_export_round_trips(self, tmp_path):
        import json
        path = tmp_path / "latency.json"
        summary = run_latency("echo", count=10, json_output=str(path))
        document = json.loads(path.read_text())
        assert document["experiment"] == "echo"
        assert document["spans"]["schema"] == 1
        assert len(document["spans"]["traces"]) == 10
        assert summary["json_output"] == str(path)

    def test_exported_traces_reconcile_individually(self, tmp_path):
        """The 1% bar holds per packet, not just in aggregate."""
        summary = run_latency("echo", count=20)
        del summary
        from repro.experiments.setups import Calibration, flde_echo_remote
        from repro.sim import Simulator
        telemetry = Telemetry(trace=False, spans=True)
        sim = Simulator(telemetry=telemetry)
        setup = flde_echo_remote(sim, Calibration())

        def run(sim):
            yield from setup.loadgen.run_closed_loop(64, 20, window=1)
            yield from setup.loadgen.drain()

        sim.spawn(run(sim))
        sim.run(until=10.0)
        traces = telemetry.spans.finished_traces()
        assert len(traces) == 20
        for trace in traces:
            totals, residue = attribute_trace(trace)
            attributed = sum(totals.values()) + residue
            assert attributed == pytest.approx(trace.duration,
                                               rel=0.01)


class TestDisabledFastPath:
    def test_null_spans_keep_datapath_untraced(self):
        from repro.experiments.echo import echo_latency
        telemetry = Telemetry(trace=False)  # spans off
        result = echo_latency("flde", count=30, telemetry=telemetry)
        assert result["count"] == 30
        assert len(telemetry.spans) == 0
        assert telemetry.spans.to_dict()["traces"] == []
        # No spans.* histograms may appear in the registry.
        assert not any(n.startswith("spans.")
                       for n in telemetry.metrics.names())

    def test_results_identical_with_and_without_spans(self):
        """Tracing must observe, never perturb: the simulated RTTs are
        bit-identical whether spans are recorded or not."""
        from repro.experiments.echo import echo_latency
        plain = echo_latency("flde", count=30,
                             telemetry=Telemetry(trace=False))
        traced = echo_latency("flde", count=30,
                              telemetry=Telemetry(trace=False,
                                                  spans=True))
        assert plain == traced
