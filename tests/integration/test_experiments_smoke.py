"""Smoke tests for the experiment harnesses (fast, reduced scale).

The benchmarks run these at full scale; here we pin the harness APIs and
the qualitative outcomes so refactors can't silently break them.
"""

import pytest

from repro.experiments.echo import (
    echo_latency,
    echo_throughput,
    fldr_latency_vs_load,
    trace_forwarding,
)
from repro.experiments.scaling import throughput as scaling_throughput
from repro.experiments.zuc import cpu_throughput, fld_throughput


class TestEchoHarness:
    def test_throughput_modes(self):
        for mode in ("flde-remote", "cpu-remote", "flde-local"):
            result = echo_throughput(mode, 512, count=150)
            assert result["received"] > 0
            assert result["gbps"] > 1.0
            assert result["mode"] == mode

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            echo_throughput("bogus", 64)

    def test_latency_summary_fields(self):
        result = echo_latency("flde", count=120)
        assert result["count"] == 120
        assert 0 < result["median_us"] < result["p999_us"] + 1e-9

    def test_trace_forwarding_shapes(self):
        flde = trace_forwarding("flde", count=800)
        cpu = trace_forwarding("cpu", count=800)
        assert flde["mpps"] > 0 and cpu["mpps"] > 0

    def test_latency_vs_load_monotone_queueing(self):
        rows = fldr_latency_vs_load(loads=[2e5, 1.5e6], per_point=150)
        assert rows[0]["median_latency_us"] is not None
        assert (rows[1]["median_latency_us"]
                >= rows[0]["median_latency_us"] * 0.9)


class TestScalingHarness:
    def test_two_cores_beat_one(self):
        one = scaling_throughput(1, count=500)
        two = scaling_throughput(2, count=500)
        assert two["gbps"] > one["gbps"] * 1.4
        assert two["active_cores"] == 2

    def test_per_core_distribution_reported(self):
        result = scaling_throughput(4, count=400)
        assert len(result["per_core_packets"]) == 4
        assert sum(result["per_core_packets"]) == result["received"]


class TestZucHarness:
    def test_fld_beats_cpu_at_512(self):
        fld = fld_throughput(512, count=120)
        cpu = cpu_throughput(512, count=120)
        assert fld["gbps"] > cpu["gbps"] * 2
        assert fld["model_gbps"] == cpu["model_gbps"]

    def test_latency_reported(self):
        result = fld_throughput(256, count=80, window=4)
        assert result["median_latency_us"] > 1.0
