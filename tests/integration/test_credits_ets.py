"""Integration: the per-queue credit interface under NIC prioritization.

§5.5: "each queue may progress at a different rate due to NIC
prioritization (e.g., ETS) or transport-layer flow-/congestion-control.
Therefore, we provide per-queue backpressure to the accelerator in the
form of a credit interface."

Here one FLD transmit queue is rate-limited by the NIC's shaper while a
second is not: the limited queue's credits pile up in-flight and
backpressure its producer; the other queue is unaffected.
"""

import pytest

from repro.core import AxisMetadata
from repro.net import Flow
from repro.sim import Simulator
from repro.sw import FldRuntime
from repro.testbed import make_remote_pair

CLIENT_MAC = "02:00:00:00:00:01"
FLD_MAC = "02:00:00:00:00:99"


def build(sim, limited_rate_bps=1e9):
    client, server = make_remote_pair(sim)
    client.add_vport_for_mac(1, CLIENT_MAC)
    server.add_vport_for_mac(2, FLD_MAC)
    runtime = FldRuntime(server)
    runtime.create_rx_queue(vport=2)
    # Queue 0: shaped hard.  Queue 1: free-running.
    server.nic.shaper.add_limiter("slow", limited_rate_bps,
                                  burst_bits=8 * 1500)
    # Tight credit pools so backpressure is visible at test scale.
    slow_q = runtime.create_eth_tx_queue(vport=2, entries=64,
                                         meter="slow", credits=8)
    fast_q = runtime.create_eth_tx_queue(vport=2, entries=64, credits=8)
    sink = client.driver.create_eth_qp(vport=1)
    sink.post_rx_buffers(1024)
    counts = {"slow": 0, "fast": 0}

    def on_receive(data, cqe):
        from repro.net.parse import parse_frame
        from repro.net import Udp
        packet = parse_frame(data)
        udp = packet.find(Udp)
        counts["slow" if udp.src_port == 1000 else "fast"] += 1

    sink.on_receive = on_receive
    return server, runtime, slow_q, fast_q, counts


def frame(src_port):
    flow = Flow(FLD_MAC, CLIENT_MAC, "10.0.0.2", "10.0.0.1",
                src_port, 2000)
    return flow.make_packet(bytes(1200), fill_checksums=False).to_bytes()


class TestCreditBackpressure:
    def test_shaped_queue_backpressures_only_itself(self):
        sim = Simulator()
        server, runtime, slow_q, fast_q, counts = build(sim)
        fld = runtime.fld
        progress = {"slow": 0, "fast": 0}

        def producer(sim, queue_id, tag, count):
            data = frame(1000 if tag == "slow" else 2000)
            for _ in range(count):
                yield from fld.send(data, AxisMetadata(queue_id=queue_id))
                progress[tag] += 1

        sim.spawn(producer(sim, slow_q, "slow", 60))
        sim.spawn(producer(sim, fast_q, "fast", 60))
        sim.run(until=100e-6)

        # The fast queue finished its work long ago; the slow queue is
        # still trickling at ~1 Gbps (1200 B ~= 10 us/packet) with only
        # 8 credits of headroom.
        assert progress["fast"] == 60
        assert progress["slow"] < 40
        # Credits reflect it: the slow queue is starved of credits.
        assert fld.credits_available(fast_q) > fld.credits_available(slow_q)

        sim.run(until=1.0)
        # Eventually the shaper admits everything; nothing was lost.
        assert counts["slow"] == 60
        assert counts["fast"] == 60

    def test_shaped_rate_enforced_on_the_wire(self):
        sim = Simulator()
        server, runtime, slow_q, _fast_q, counts = build(
            sim, limited_rate_bps=2e9)
        fld = runtime.fld
        times = {}

        def producer(sim):
            data = frame(1000)
            for _ in range(100):
                yield from fld.send(data, AxisMetadata(queue_id=slow_q))
            times["done_producing"] = sim.now

        sim.spawn(producer(sim))
        sim.run(until=1.0)
        assert counts["slow"] == 100
        # With 8 credits the producer tracks the 2 Gbps shaped rate:
        # ~92 completions at 4.8 us each before the last credit frees.
        assert times["done_producing"] > 0.3e-3
