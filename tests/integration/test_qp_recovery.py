"""Integration: FLD-R QP transport failure and recovery (§5.3, Table 4).

A lossy wire starves the FLD QP of acknowledgements until its retry
budget runs out; the NIC flushes the QP to ERR and posts an error CQE
on its FLD completion ring.  The kernel driver dispatches it, and the
``enable_qp_recovery`` hook walks the QP RESET→INIT→RTR→RTS back to
its old remote through the firmware command channel.  Once the wire
heals, the connection carries traffic again without re-handshaking.
"""

from repro.core import FldError
from repro.experiments.setups import fldr_echo
from repro.net.roce import Bth
from repro.nic import RcQp, RdmaEngine
from repro.sim import Simulator
from repro.sw import FldKernelDriver


class _LossyIngress:
    """Drop RoCE frames arriving at a port while the fault is armed."""

    def __init__(self, port):
        self._deliver = port.on_receive
        port.on_receive = self
        self.armed = False
        self.dropped = 0

    def __call__(self, packet):
        if self.armed and packet.find(Bth) is not None:
            self.dropped += 1
            return
        self._deliver(packet)


def build():
    sim = Simulator()
    setup = fldr_echo(sim)  # remote: client and server across a wire
    # The server NIC hosts exactly one QP: the FLD's end of the RC
    # connection the control plane accepted.
    (server_qp,) = setup.server.nic.rdma.qps.values()
    setup.server.nic.rdma.max_retries = 2
    kdriver = FldKernelDriver(sim, setup.runtime.fld)
    return sim, setup, server_qp, kdriver


class TestQpRecovery:
    def test_retry_exhaustion_flushes_qp_to_err(self):
        sim, setup, server_qp, kdriver = build()
        fault = _LossyIngress(setup.client.nic.port)
        fault.armed = True
        assert server_qp.state == RcQp.RTS
        remote_qpn = server_qp.remote_qpn

        setup.connection.post(b"x" * 512)
        sim.run(until=0.05)
        assert fault.dropped > 0
        assert server_qp.state == RcQp.ERR
        assert server_qp.error_syndrome == RdmaEngine.SYNDROME_RETRY_EXCEEDED
        errors = kdriver.errors_of_kind(FldError.CQE_ERROR)
        assert errors
        assert errors[0].syndrome == RdmaEngine.SYNDROME_RETRY_EXCEEDED
        # Without a recovery hook, the QP stays down.
        assert kdriver.stats_recoveries == 0
        assert server_qp.remote_qpn == remote_qpn or \
            server_qp.remote_qpn is None

    def test_recovery_hook_walks_qp_back_to_rts(self):
        sim, setup, server_qp, kdriver = build()
        recovered = []
        kdriver.enable_qp_recovery(
            setup.runtime, on_recovered=lambda qp: recovered.append(
                (qp.state, qp.next_psn, len(qp.outstanding))))
        fault = _LossyIngress(setup.client.nic.port)
        fault.armed = True
        remote_qpn = server_qp.remote_qpn

        setup.connection.post(b"x" * 512)
        sim.run(until=0.05)
        assert fault.dropped > 0
        assert kdriver.errors_of_kind(FldError.CQE_ERROR)
        # While the wire stays down the QP keeps failing and the hook
        # keeps bringing it back: one recovery per ERR drop.
        assert kdriver.stats_recoveries >= 1
        assert kdriver.stats_recoveries == len(
            kdriver.errors_of_kind(FldError.CQE_ERROR))
        # Each recovery left the QP at RTS with fresh PSNs and a
        # flushed send queue, reconnected to the same peer.
        assert recovered
        assert all(r == (RcQp.RTS, 0, 0) for r in recovered)
        assert server_qp.state == RcQp.RTS
        assert server_qp.remote_qpn == remote_qpn

    def test_traffic_resumes_after_wire_heals(self):
        sim, setup, server_qp, kdriver = build()
        kdriver.enable_qp_recovery(setup.runtime)
        fault = _LossyIngress(setup.client.nic.port)
        fault.armed = True
        replies = []

        def consume(sim):
            while True:
                message, _cqe = yield setup.connection.responses.get()
                replies.append((sim.now, message))

        setup.connection.post(b"x" * 512)
        sim.spawn(consume(sim))
        sim.run(until=0.05)
        assert server_qp.state == RcQp.RTS  # recovered while faulted
        assert not replies                  # ... but the echo was lost
        recoveries_while_faulted = kdriver.stats_recoveries
        assert recoveries_while_faulted >= 1
        healed_at = sim.now
        fault.armed = False
        # The client QP never gave up (unbounded retries): its
        # retransmits now land, the echo runs again, the reply passes
        # the healed wire.
        sim.run(until=healed_at + 0.05)
        assert replies
        assert replies[0][1] == b"x" * 512
        # The healed wire acks everything; no further recoveries fire.
        assert kdriver.stats_recoveries == recoveries_while_faulted
