"""The N-tenant scaling experiment (one FLD, N accelerator functions).

Three contracts: with one tenant the composed testbed is bit-identical
to the historical single-tenant FLD-E remote echo; with several
tenants every packet reaches exactly its own tenant's engine and the
invariant auditor stays clean; and the sweep points carry their
topology into the cache key (shape-addressed results) while the frozen
seed contract keeps the simulated bytes stable.
"""

import json
import os
import random

import pytest

from repro.experiments import scale_tenants
from repro.sweep import SweepPoint

FIXTURE = os.path.join(os.path.dirname(__file__), os.pardir, "golden",
                       "topology_identity.json")


def test_single_tenant_bit_identical_to_flde_remote():
    with open(FIXTURE, encoding="utf-8") as fh:
        golden = json.load(fh)["flde_echo_remote"]
    random.seed(1234)
    result = scale_tenants.throughput(1, 256, count=400)
    for key in ("sent", "received", "gbps", "mpps"):
        assert result[key] == golden[key], key
    assert result["violations"] == 0
    (tenant,) = result["per_tenant"]
    assert tenant["kind"] == "echo"
    assert tenant["received"] == golden["received"]


class TestFourTenants:
    @pytest.fixture(scope="class")
    def result(self):
        random.seed(1234)
        return scale_tenants.throughput(4, 256, count=400)

    def test_no_loss_and_clean_audit(self, result):
        assert result["sent"] == 400
        assert result["received"] == 400
        assert result["violations"] == 0

    def test_packets_reach_exactly_their_tenant(self, result):
        # 400 frames dealt round-robin over 4 tenants: each engine must
        # process exactly its 100 — any crosstalk through the shared
        # FLD rx stream would skew these counts.
        for row in result["per_tenant"]:
            assert row["accel_packets"] == 100, row
            assert row["received"] == 100, row

    def test_tenant_kind_mix(self, result):
        kinds = [row["kind"] for row in result["per_tenant"]]
        assert kinds == ["echo", "zuc-echo", "iot-echo", "echo"]
        vports = [row["vport"] for row in result["per_tenant"]]
        assert vports == [2, 3, 4, 5]

    def test_per_tenant_latency_reported(self, result):
        for row in result["per_tenant"]:
            assert row["mean_us"] is not None
            assert row["p99_us"] >= row["mean_us"] > 0
        by_kind = {row["kind"]: row for row in result["per_tenant"]}
        # The ZUC tenant pays its keystream setup+encrypt time twice
        # (encrypt on rx, decrypt on tx): visibly slower than echo.
        assert by_kind["zuc-echo"]["mean_us"] > by_kind["echo"]["mean_us"]


class TestSweepPoints:
    def test_topology_joins_cache_key(self):
        p1, p2, p4 = scale_tenants.sweep_points(tenant_counts=(1, 2, 4))
        assert p1.topology == scale_tenants.scale_tenants_spec(1).to_dict()
        keys = {p.key() for p in (p1, p2, p4)}
        assert len(keys) == 3

    def test_same_shape_same_key(self):
        (a,) = scale_tenants.sweep_points(tenant_counts=(4,))
        (b,) = scale_tenants.sweep_points(tenant_counts=(4,))
        assert a.key() == b.key()

    def test_seed_contract_excludes_topology(self):
        # The seed derives from the frozen schema-2 payload: growing
        # the spec (new fields, more tenants in the dict) must never
        # move the simulated bytes of an existing point.
        (point,) = scale_tenants.sweep_points(tenant_counts=(2,))
        assert point.topology is not None
        bare = SweepPoint(point.experiment, point.target, point.params)
        assert point.seed() == bare.seed()
        assert point.key() != bare.key()
