"""Integration: the error path (§5.3 "Error Handling").

FLD detects data-plane errors and reports them through its kernel
driver; recovery stays with the control-plane application.  These tests
inject faults at different layers and check the channel end to end.
"""

import pytest

from repro.core import FldError, bar
from repro.nic import Cqe
from repro.nic.wqe import CQE_ERROR
from repro.sim import Simulator
from repro.sw import FldKernelDriver, FldRuntime
from repro.testbed import make_local_node

FLD_MAC = "02:00:00:00:00:99"


def build(sim):
    node = make_local_node(sim)
    node.add_vport_for_mac(2, FLD_MAC)
    runtime = FldRuntime(node)
    kdriver = FldKernelDriver(sim, runtime.fld)
    return node, runtime, kdriver


class TestErrorChannel:
    def test_nic_error_cqe_reaches_application_handler(self):
        sim = Simulator()
        node, runtime, kdriver = build(sim)
        txq = runtime.create_eth_tx_queue(vport=2)
        handled = []
        kdriver.on_error(handled.append)

        # The NIC reports a transmit error: an error CQE lands in the
        # FLD BAR's completion ring (injected via the fabric, as the
        # real device would write it).
        qpn = runtime.fld.tx.queue(txq).qpn
        error_cqe = Cqe(CQE_ERROR, qpn, 0, 0, syndrome=0x22)
        node.fabric.post_write(
            node.nic, runtime.fld_bar_base + bar.cq_address(txq),
            error_cqe.pack(),
        )
        sim.run(until=0.001)
        assert len(handled) == 1
        assert handled[0].kind == FldError.CQE_ERROR
        assert handled[0].syndrome == 0x22
        assert kdriver.error_log == handled

    def test_unbound_cq_write_is_reported_not_fatal(self):
        sim = Simulator()
        node, runtime, kdriver = build(sim)
        stray = Cqe(1, 1, 0, 0)
        node.fabric.post_write(
            node.nic, runtime.fld_bar_base + bar.cq_address(9),
            stray.pack(),
        )
        sim.run(until=0.001)
        assert len(kdriver.errors_of_kind(FldError.CQE_ERROR)) == 1

    def test_multiple_handlers_all_invoked(self):
        sim = Simulator()
        _node, runtime, kdriver = build(sim)
        a, b = [], []
        kdriver.on_error(a.append)
        kdriver.on_error(b.append)
        runtime.fld.errors.report(FldError.BUFFER_EXHAUSTED, queue=1)
        sim.run(until=0.001)
        assert len(a) == len(b) == 1

    def test_data_plane_continues_after_error(self):
        """An error on one queue does not wedge the data path."""
        from repro.accelerators import EchoAccelerator
        from repro.host import LoadGenerator
        from repro.net import Flow
        from repro.experiments.setups import flde_echo_remote

        sim = Simulator()
        setup = flde_echo_remote(sim)
        kdriver = FldKernelDriver(sim, setup.runtime.fld)
        # Inject an error CQE mid-run.
        loadgen = setup.loadgen

        def run(sim):
            yield from loadgen.run_closed_loop(frame_size=256, count=10)
            qpn = setup.runtime.fld.tx.queue(0).qpn
            setup.server.fabric.post_write(
                setup.server.nic,
                setup.runtime.fld_bar_base + bar.cq_address(0),
                Cqe(CQE_ERROR, qpn, 0, 0, syndrome=1).pack(),
            )
            yield from loadgen.run_closed_loop(frame_size=256, count=10)
            yield from loadgen.drain()

        sim.spawn(run(sim))
        sim.run(until=1.0)
        assert loadgen.stats_received == 20
        assert len(kdriver.error_log) == 1
