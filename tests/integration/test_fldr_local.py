"""Integration: FLD-R in the *local* setup (§8 Setup, §8.1.2).

A client QP on the host connects to an FLD QP associated with the same
Innova-2 NIC; traffic never touches the wire — the eSwitch loops RoCE
frames between the host's vPort and FLD's vPort, stressing the PCIe
path, exactly the paper's local FLD-R experiments.
"""

import pytest

from repro.experiments.echo import fldr_throughput
from repro.experiments.setups import fldr_echo
from repro.sim import Simulator


class TestFldRLocal:
    def test_local_roundtrip_without_wire(self):
        sim = Simulator()
        setup = fldr_echo(sim, local=True)
        connection = setup.connection
        result = {}

        def proc(sim):
            connection.post(bytes(range(256)) * 8)  # 2 KiB message
            message, _cqe = yield connection.responses.get()
            result["reply"] = message
            result["time"] = sim.now

        sim.spawn(proc(sim))
        sim.run(until=0.05)
        assert result["reply"] == bytes(range(256)) * 8
        # The physical port never transmitted: pure eSwitch loopback.
        assert setup.server.nic.port.stats_tx_packets == 0
        assert setup.server.nic.eswitch.stats_loopback > 0

    def test_local_latency_below_remote(self):
        """Local skips two wire crossings: its RTT must be lower."""
        def median_rtt(local):
            sim = Simulator()
            setup = fldr_echo(sim, local=local)
            connection = setup.connection
            samples = []

            def proc(sim):
                for _ in range(40):
                    start = sim.now
                    connection.post(bytes(1024))
                    yield connection.responses.get()
                    samples.append(sim.now - start)

            sim.spawn(proc(sim))
            sim.run(until=0.05)
            samples.sort()
            return samples[len(samples) // 2]

        local = median_rtt(True)
        remote = median_rtt(False)
        assert local < remote
        # Paper: 9.4 us local vs 10.6 us remote at low load — a modest,
        # wire-latency-sized gap, not an order of magnitude.
        assert remote - local < 3e-6

    def test_local_throughput_exceeds_remote_ceiling_unreached(self):
        """Local FLD-R moves traffic at a healthy rate through the
        PCIe-only path (the paper notes local FLD-R underperformed
        for small messages; large messages flow fine)."""
        result = fldr_throughput(4096, count=200, local=True)
        assert result["received"] == 200
        assert result["gbps"] > 15.0
