"""Unit tests for the per-node address map allocator."""

import pytest

from repro.core import bar as fld_bar
from repro.topology import (
    ACCEL_BAR_BASE,
    AddressMap,
    AddressMapError,
    FLD_BAR_BASE,
    HOST_MEM_BASE,
    HOST_MEM_SIZE,
    NIC_BAR_BASE,
    Window,
)


class TestWindow:
    def test_end_and_overlap(self):
        a = Window("a", 0x1000, 0x100)
        assert a.end == 0x1100
        assert a.overlaps(Window("b", 0x10ff, 0x10))
        assert not a.overlaps(Window("c", 0x1100, 0x10))
        assert not a.overlaps(Window("d", 0x0, 0x1000))


class TestAddressMap:
    def test_reserve_disjoint_windows(self):
        amap = AddressMap("node")
        amap.reserve("dram", 0x0, 0x1000)
        amap.reserve("bar", 0x1000, 0x1000)
        assert "dram" in amap and "bar" in amap
        assert [w.name for w in amap.windows()] == ["dram", "bar"]
        assert amap.lookup("bar").base == 0x1000

    def test_overlap_rejected_with_both_names(self):
        amap = AddressMap("node")
        amap.reserve("dram", 0x0, 0x2000)
        with pytest.raises(AddressMapError) as excinfo:
            amap.reserve("bar", 0x1fff, 0x10)
        message = str(excinfo.value)
        assert "bar" in message and "dram" in message

    def test_duplicate_name_rejected(self):
        amap = AddressMap("node")
        amap.reserve("dram", 0x0, 0x1000)
        with pytest.raises(AddressMapError, match="already mapped"):
            amap.reserve("dram", 0x10000, 0x1000)

    def test_non_positive_size_rejected(self):
        amap = AddressMap("node")
        with pytest.raises(AddressMapError):
            amap.reserve("empty", 0x0, 0)

    def test_fld_bar_stacking(self):
        amap = AddressMap("node")
        assert amap.fld_bar(0) == FLD_BAR_BASE
        assert amap.fld_bar(1) == FLD_BAR_BASE + fld_bar.FLD_BAR_SIZE
        assert amap.fld_bar(3) == FLD_BAR_BASE + 3 * fld_bar.FLD_BAR_SIZE
        with pytest.raises(AddressMapError):
            amap.fld_bar(-1)


class TestHistoricalConstants:
    """The windows keep their historical values: address-derived
    behaviour (and therefore simulated results) must not move."""

    def test_values_pinned(self):
        assert HOST_MEM_BASE == 0x0
        assert HOST_MEM_SIZE == 1 << 34
        assert NIC_BAR_BASE == 0x10_0000_0000
        assert FLD_BAR_BASE == 0x18_0000_0000
        assert ACCEL_BAR_BASE == 0x20_0000_0000

    def test_standard_windows_disjoint(self):
        amap = AddressMap("node")
        amap.reserve("dram", HOST_MEM_BASE, HOST_MEM_SIZE)
        amap.reserve("nic-bar", NIC_BAR_BASE, 1 << 20)
        amap.reserve("fld-bar", FLD_BAR_BASE, fld_bar.FLD_BAR_SIZE)
        amap.reserve("accel-bar", ACCEL_BAR_BASE, 1 << 20)
        assert len(amap.windows()) == 4
