"""Elaborator tests: spec -> Testbed, lifecycle, demux wiring."""

import pytest

from repro.experiments.scale_tenants import scale_tenants_spec
from repro.experiments.setups import flde_echo_remote_spec
from repro.sim import Simulator, Store
from repro.topology import (
    HostQpSpec,
    NodeSpec,
    SpecError,
    TopologySpec,
    accel_kinds,
    build,
)


class TestBuildQueries:
    def setup_method(self):
        self.sim = Simulator()
        self.testbed = build(self.sim, flde_echo_remote_spec())

    def test_components_addressable_by_spec_name(self):
        assert self.testbed.node("server").name == "server"
        assert self.testbed.fld("server.fld").fld.name == "server.fld"
        fn = self.testbed.accel("echo")
        assert fn.spec.kind == "echo"
        assert fn.runtime is self.testbed.fld("server.fld")
        assert self.testbed.host_qp("client") is not None

    def test_link_and_vports_elaborated(self):
        client, server = (self.testbed.node("client"),
                          self.testbed.node("server"))
        assert client.nic.port.peer is server.nic.port
        assert 1 in client.nic.eswitch.vports
        assert 2 in server.nic.eswitch.vports

    def test_single_function_taps_fld_rx_stream_directly(self):
        fn = self.testbed.accel("echo")
        assert fn.accel._upstream is fn.runtime.fld.rx_stream

    def test_reset_zeroes_measurement_stats(self):
        fn = self.testbed.accel("echo")
        fn.accel.stats_processed = 7
        port = self.testbed.node("server").nic.port
        port.stats_rx_packets = 9
        self.testbed.reset()
        assert fn.accel.stats_processed == 0
        assert port.stats_rx_packets == 0

    def test_quiesce_clean_on_idle_testbed(self):
        assert self.testbed.quiesce() == []
        self.testbed.assert_quiesced()


class TestMultiFunctionDemux:
    def test_each_function_gets_private_bounded_store(self):
        sim = Simulator()
        testbed = build(sim, scale_tenants_spec(3))
        runtime = testbed.fld("server.fld")
        upstreams = [testbed.accel(f"tenant{i}").accel._upstream
                     for i in range(3)]
        for upstream in upstreams:
            assert upstream is not runtime.fld.rx_stream
            assert isinstance(upstream, Store)
        assert len({id(u) for u in upstreams}) == 3

    def test_rx_sram_carved_across_tenants(self):
        sim = Simulator()
        testbed = build(sim, scale_tenants_spec(4))
        for i in range(4):
            assert testbed.accel(f"tenant{i}").spec.rx_strides == 16


class TestBuildErrors:
    def test_host_qp_without_vport_spec(self):
        spec = TopologySpec(
            name="t", nodes=[NodeSpec(name="n")],
            host_qps=[HostQpSpec(name="q", node="n", vport=5)])
        with pytest.raises(SpecError, match="vport"):
            build(Simulator(), spec)

    def test_invalid_spec_rejected_before_elaboration(self):
        spec = TopologySpec(name="t", nodes=[NodeSpec(name="n"),
                                             NodeSpec(name="n")])
        with pytest.raises(SpecError):
            build(Simulator(), spec)


class TestNodeOverrides:
    def test_port_rate_override(self):
        spec = TopologySpec(
            name="t", nodes=[NodeSpec(name="n", port_rate_bps=100e9)])
        testbed = build(Simulator(), spec)
        assert testbed.node("n").nic.config.port_rate_bps == 100e9


def test_registered_accelerator_kinds():
    assert set(accel_kinds()) >= {"echo", "zuc-echo", "iot-echo",
                                  "iot-auth", "rdma-echo"}
