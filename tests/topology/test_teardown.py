"""Full-path teardown: every create has a destroy that really releases.

Destroy-commands must return what their creates took — NIC rings,
FLD receive-SRAM slices, host allocator blocks, address-map windows,
steering rules — so an N-tenant testbed can be torn down to an empty
firmware object table and rebuilt indefinitely without exhausting
anything.
"""

import pytest

from repro.experiments.scale_tenants import scale_tenants_spec
from repro.sim import Simulator
from repro.sw import FldRuntime
from repro.testbed import make_local_node
from repro.topology.build import build

FLD_MAC = "02:00:00:00:00:99"
TENANTS = 4


def elaborate(tenants=TENANTS):
    sim = Simulator()
    testbed = build(sim, scale_tenants_spec(tenants))
    return sim, testbed


class TestTestbedTeardown:
    def test_object_tables_empty_after_teardown(self):
        sim, testbed = elaborate()
        populated = testbed.objects()
        # The build really went through the firmware: tenants' queues,
        # vPorts and steering rules all have table entries.
        assert all(rows for rows in populated.values())
        assert sum(len(rows) for rows in populated.values()) > 3 * TENANTS
        testbed.teardown()
        for name, rows in testbed.objects().items():
            assert rows == [], f"{name} still holds firmware objects"
        for node in testbed.nodes.values():
            assert len(node.nic.cmd.table) == 0

    def test_rx_sram_slices_returned(self):
        sim, testbed = elaborate()
        fld = testbed.fld("server.fld").fld
        assert fld.rx.sram_bytes_in_use > 0
        testbed.teardown()
        assert fld.rx.sram_bytes_in_use == 0

    def test_addrmap_windows_released(self):
        sim, testbed = elaborate()
        server = testbed.node("server")
        assert "server.fld" in server.addrmap
        testbed.teardown()
        names = {w.name for w in server.addrmap.windows()}
        assert names == {"dram", "nic-bar"}

    def test_host_allocator_returns_to_empty(self):
        sim, testbed = elaborate()
        client = testbed.node("client")
        assert client.driver.allocator.used > 0
        testbed.teardown()
        for node in testbed.nodes.values():
            assert node.driver.allocator.used == 0, node.name

    def test_steering_rules_and_vports_removed(self):
        sim, testbed = elaborate()
        server = testbed.node("server")
        assert len(server.nic.eswitch.vports) == TENANTS
        assert server.nic.steering.table("fdb").rules
        testbed.teardown()
        assert server.nic.eswitch.vports == {}
        assert server.nic.steering.table("fdb").rules == []

    def test_quiesce_clean_after_teardown(self):
        sim, testbed = elaborate()
        testbed.teardown()
        testbed.assert_quiesced()


class TestChurn:
    """Create/destroy cycles must not bleed SRAM, rings or memory."""

    def test_fld_queue_churn_does_not_exhaust_sram(self):
        sim = Simulator()
        node = make_local_node(sim)
        node.add_vport_for_mac(2, FLD_MAC)
        runtime = FldRuntime(node)
        # Each rx queue takes the full 64-stride SRAM budget: any leak
        # fails the second iteration, never mind the twentieth.
        for i in range(20):
            rq = runtime.create_rx_queue(vport=2)
            txq = runtime.create_eth_tx_queue(vport=2)
            runtime.destroy_tx_queue(txq)
            runtime.destroy_rx_queue(rq)
            assert runtime.fld.rx.sram_bytes_in_use == 0, f"iteration {i}"

    def test_host_qp_churn_returns_allocator_blocks(self):
        sim = Simulator()
        node = make_local_node(sim)
        node.add_vport_for_mac(2, FLD_MAC)
        baseline = node.driver.allocator.used
        for i in range(20):
            qp = node.driver.create_eth_qp(vport=2)
            qp.post_rx_buffers(256)
            qp.close()
            assert node.driver.allocator.used == baseline, f"iteration {i}"
        assert len(node.nic.cmd.table) == 2  # the vport + its fdb rule

    def test_runtime_churn_releases_bar_window(self):
        sim = Simulator()
        node = make_local_node(sim)
        node.add_vport_for_mac(2, FLD_MAC)
        for _ in range(3):
            runtime = FldRuntime(node)
            rq = runtime.create_rx_queue(vport=2)
            runtime.shutdown()
            assert "local.fld" not in node.addrmap
            assert runtime.fld.rx.sram_bytes_in_use == 0

    def test_tenant_vport_churn(self):
        """Steer, unsteer, re-steer the same MACs — rule and vPort
        objects must not accumulate in the firmware table."""
        sim = Simulator()
        node = make_local_node(sim)
        macs = [f"02:00:00:00:01:{i:02x}" for i in range(TENANTS)]
        for _ in range(5):
            for i, mac in enumerate(macs):
                node.add_vport_for_mac(2 + i, mac)
            assert len(node.nic.eswitch.vports) == TENANTS
            for mac in reversed(macs):
                node.remove_vport_for_mac(mac)
            assert len(node.nic.cmd.table) == 0
            assert node.nic.eswitch.vports == {}
