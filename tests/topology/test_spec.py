"""Unit tests for TopologySpec validation and serialization."""

import pytest

from repro.experiments.scale_tenants import scale_tenants_spec
from repro.experiments.setups import flde_echo_remote_spec
from repro.topology import (
    AccelFnSpec,
    FldSpec,
    HostQpSpec,
    LinkSpec,
    NodeSpec,
    SpecError,
    TopologySpec,
    VportSpec,
)


def minimal_spec(**overrides):
    fields = dict(
        name="t",
        nodes=[NodeSpec(name="client"), NodeSpec(name="server")],
        links=[LinkSpec(a="client", b="server")],
        vports=[VportSpec(node="server", vport=2,
                          mac="02:00:00:00:00:99")],
        flds=[FldSpec(node="server")],
        accel_fns=[AccelFnSpec(name="echo", fld="server.fld",
                               kind="echo", vport=2)],
        host_qps=[HostQpSpec(name="client", node="client", vport=1)],
    )
    fields.update(overrides)
    return TopologySpec(**fields)


class TestValidate:
    def test_experiment_specs_validate(self):
        flde_echo_remote_spec().validate()
        scale_tenants_spec(4).validate()

    def test_duplicate_node_names(self):
        spec = minimal_spec(nodes=[NodeSpec(name="n"), NodeSpec(name="n")],
                            links=[], vports=[], flds=[], accel_fns=[],
                            host_qps=[])
        with pytest.raises(SpecError, match="duplicate node names"):
            spec.validate()

    def test_unknown_core_role(self):
        spec = minimal_spec(nodes=[NodeSpec(name="client", core="turbo"),
                                   NodeSpec(name="server")])
        with pytest.raises(SpecError, match="core"):
            spec.validate()

    def test_link_to_unknown_node(self):
        spec = minimal_spec(links=[LinkSpec(a="client", b="ghost")])
        with pytest.raises(SpecError, match="unknown node"):
            spec.validate()

    def test_port_cabled_twice(self):
        spec = minimal_spec(
            nodes=[NodeSpec(name="client"), NodeSpec(name="server"),
                   NodeSpec(name="third")],
            links=[LinkSpec(a="client", b="server"),
                   LinkSpec(a="client", b="third")])
        with pytest.raises(SpecError, match="already cabled"):
            spec.validate()

    def test_self_link(self):
        spec = minimal_spec(links=[LinkSpec(a="client", b="client")])
        with pytest.raises(SpecError, match="itself"):
            spec.validate()

    def test_duplicate_vport_entry(self):
        vp = VportSpec(node="server", vport=2, mac="02:00:00:00:00:99")
        spec = minimal_spec(vports=[vp, vp])
        with pytest.raises(SpecError, match="duplicate vport"):
            spec.validate()

    def test_two_flds_one_bar_slot(self):
        spec = minimal_spec(flds=[FldSpec(node="server"),
                                  FldSpec(node="server", name="other")])
        with pytest.raises(SpecError, match="BAR index"):
            spec.validate()

    def test_duplicate_fld_names(self):
        spec = minimal_spec(flds=[FldSpec(node="server", index=0,
                                          name="fld"),
                                  FldSpec(node="server", index=1,
                                          name="fld")])
        with pytest.raises(SpecError, match="duplicate FLD names"):
            spec.validate()

    def test_accel_fn_unknown_fld(self):
        spec = minimal_spec(accel_fns=[AccelFnSpec(
            name="echo", fld="ghost.fld", kind="echo", vport=2)])
        with pytest.raises(SpecError, match="unknown FLD"):
            spec.validate()

    def test_duplicate_accel_fn_names(self):
        fn = AccelFnSpec(name="echo", fld="server.fld", kind="echo",
                         vport=2)
        spec = minimal_spec(accel_fns=[fn, fn])
        with pytest.raises(SpecError, match="duplicate accel fn"):
            spec.validate()

    def test_two_default_rx_queues_on_one_vport(self):
        spec = minimal_spec(accel_fns=[
            AccelFnSpec(name="a", fld="server.fld", kind="echo", vport=2),
            AccelFnSpec(name="b", fld="server.fld", kind="echo", vport=2),
        ])
        with pytest.raises(SpecError, match="default"):
            spec.validate()

    def test_host_qp_unknown_node(self):
        spec = minimal_spec(host_qps=[HostQpSpec(name="q", node="ghost",
                                                 vport=1)])
        with pytest.raises(SpecError, match="unknown node"):
            spec.validate()

    def test_duplicate_host_qp_names(self):
        qp = HostQpSpec(name="q", node="client", vport=1)
        spec = minimal_spec(host_qps=[qp, qp])
        with pytest.raises(SpecError, match="duplicate host qp"):
            spec.validate()


class TestSerialization:
    @pytest.mark.parametrize("spec", [
        flde_echo_remote_spec(),
        scale_tenants_spec(1),
        scale_tenants_spec(4),
    ], ids=["flde-remote", "tenants-1", "tenants-4"])
    def test_round_trip(self, spec):
        clone = TopologySpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.to_dict() == spec.to_dict()

    def test_dict_is_json_canonical(self):
        import json
        data = scale_tenants_spec(2).to_dict()
        assert json.loads(json.dumps(data, sort_keys=True)) == data

    def test_fld_resolved_name(self):
        assert FldSpec(node="n").resolved_name() == "n.fld"
        assert FldSpec(node="n", index=2).resolved_name() == "n.fld2"
        assert FldSpec(node="n", index=2,
                       name="x").resolved_name() == "x"
