"""Node-level wiring: FDB steering, idempotent vPorts, cabling."""

import pytest

from repro.net import Flow
from repro.nic import Drop, ForwardToVport, MatchSpec
from repro.sim import Simulator
from repro.topology import Node, connect

MAC_A = "02:00:00:00:00:0a"
MAC_B = "02:00:00:00:00:0b"


def make_packet(dst_mac):
    flow = Flow("02:00:00:00:00:01", dst_mac, "10.0.0.1", "10.0.0.2",
                100, 200)
    return flow.make_packet(b"payload", fill_checksums=False)


class TestAddVportForMac:
    def test_creates_vport_and_fdb_rule(self):
        node = Node(Simulator(), "n")
        node.add_vport_for_mac(2, MAC_A)
        assert 2 in node.nic.eswitch.vports
        table = node.nic.steering.table("fdb")
        disposition = node.nic.steering.process(make_packet(MAC_A), "fdb")
        assert disposition.kind == disposition.VPORT
        assert disposition.target == 2
        assert len(table.rules) == 1

    def test_idempotent_same_pair(self):
        node = Node(Simulator(), "n")
        node.add_vport_for_mac(2, MAC_A)
        node.add_vport_for_mac(2, MAC_A)          # no-op
        node.add_vport_for_mac(2, MAC_A.upper())  # case-insensitive no-op
        assert len(node.nic.steering.table("fdb").rules) == 1

    def test_resteer_to_other_vport_rejected(self):
        node = Node(Simulator(), "n")
        node.add_vport_for_mac(2, MAC_A)
        with pytest.raises(ValueError, match="already steered"):
            node.add_vport_for_mac(3, MAC_A)
        # The losing call must not leave a half-made vPort rule behind.
        assert len(node.nic.steering.table("fdb").rules) == 1


class TestFdbRulePriority:
    def test_rules_sorted_by_descending_priority(self):
        table = Node(Simulator(), "n").nic.steering.table("fdb")
        table.add_rule(MatchSpec(dst_mac=MAC_A), [Drop()], priority=0)
        table.add_rule(MatchSpec(dst_mac=MAC_A), [Drop()], priority=10)
        table.add_rule(MatchSpec(dst_mac=MAC_A), [Drop()], priority=5)
        assert [r.priority for r in table.rules] == [10, 5, 0]

    def test_equal_priority_preserves_insertion_order(self):
        node = Node(Simulator(), "n")
        node.add_vport_for_mac(2, MAC_A)
        node.add_vport_for_mac(3, MAC_B)
        rules = node.nic.steering.table("fdb").rules
        assert [r.priority for r in rules] == [10, 10]
        assert [r.actions[0].vport for r in rules] == [2, 3]

    def test_higher_priority_wins_lookup(self):
        node = Node(Simulator(), "n")
        node.add_vport_for_mac(2, MAC_A)  # priority 10
        node.nic.eswitch.add_vport(7)
        node.nic.steering.table("fdb").add_rule(
            MatchSpec(dst_mac=MAC_A), [ForwardToVport(7)], priority=20)
        disposition = node.nic.steering.process(make_packet(MAC_A), "fdb")
        assert disposition.target == 7


class TestConnect:
    def test_connect_is_bidirectional(self):
        sim = Simulator()
        a, b = Node(sim, "a"), Node(sim, "b")
        connect(a, b)
        assert a.nic.port.peer is b.nic.port
        assert b.nic.port.peer is a.nic.port

    def test_double_connect_rejected(self):
        sim = Simulator()
        a, b, c = Node(sim, "a"), Node(sim, "b"), Node(sim, "c")
        connect(a, b)
        with pytest.raises(ValueError, match="already connected"):
            connect(a, c)
        with pytest.raises(ValueError, match="already connected"):
            connect(c, b)
        # The failed cabling must not have wired either direction.
        assert c.nic.port.peer is None
