"""Bit-identity of the spec-built testbeds to the pre-refactor path.

``tests/golden/topology_identity.json`` pins the exact numbers the
hand-wired ``flde_echo_remote`` / ``flde_echo_local`` testbeds produced
before experiments were rebuilt on the declarative topology layer.
The comparison is exact (``==`` on floats): the elaborator must
construct the same objects in the same order, so every simulated event
— and therefore every digit — is unchanged.
"""

import json
import os
import random

import pytest

from repro.experiments.echo import echo_latency, echo_throughput

FIXTURE = os.path.join(os.path.dirname(__file__), os.pardir, "golden",
                       "topology_identity.json")


@pytest.fixture(scope="module")
def golden():
    with open(FIXTURE, encoding="utf-8") as fh:
        return json.load(fh)


def test_flde_echo_remote_bit_identical(golden):
    random.seed(1234)
    result = echo_throughput("flde-remote", 256, count=400)
    assert result == golden["flde_echo_remote"]


def test_flde_echo_local_bit_identical(golden):
    random.seed(1234)
    result = echo_throughput("flde-local", 256, count=400)
    assert result == golden["flde_echo_local"]


def test_flde_latency_bit_identical(golden):
    random.seed(99)
    result = echo_latency("flde", count=300)
    assert result == golden["flde_latency"]
