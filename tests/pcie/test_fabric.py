"""Unit tests for the PCIe fabric: routing, timing, peer-to-peer."""

import pytest

from repro.pcie import (
    INNOVA2_LINK,
    MemoryRegion,
    MmioRegion,
    PcieEndpoint,
    PcieError,
    PcieFabric,
    PcieLinkConfig,
)
from repro.sim import Simulator


def build_fabric(latency=0.0):
    sim = Simulator()
    fabric = PcieFabric(sim)
    config = PcieLinkConfig(latency=latency)
    host = MemoryRegion("host", 1 << 20)
    device = MemoryRegion("device", 1 << 16)
    fabric.attach(host, config)
    fabric.attach(device, config)
    fabric.map_window(0x0000_0000, 1 << 20, host)
    fabric.map_window(0x1000_0000, 1 << 16, device)
    return sim, fabric, host, device


class TestAddressing:
    def test_decode_finds_bar(self):
        _sim, fabric, host, device = build_fabric()
        assert fabric.decode(0x100).endpoint is host
        assert fabric.decode(0x1000_0100).endpoint is device

    def test_unmapped_address_raises(self):
        _sim, fabric, *_ = build_fabric()
        with pytest.raises(PcieError):
            fabric.decode(0x9000_0000)

    def test_overlapping_windows_rejected(self):
        sim = Simulator()
        fabric = PcieFabric(sim)
        a = MemoryRegion("a", 0x1000)
        fabric.attach(a)
        fabric.map_window(0x0, 0x1000, a)
        with pytest.raises(PcieError):
            fabric.map_window(0x800, 0x1000, a)

    def test_double_attach_rejected(self):
        sim = Simulator()
        fabric = PcieFabric(sim)
        a = MemoryRegion("a", 0x1000)
        fabric.attach(a)
        with pytest.raises(PcieError):
            fabric.attach(a)

    def test_unattached_requester_rejected(self):
        _sim, fabric, *_ = build_fabric()
        stranger = MemoryRegion("stranger", 0x100)
        with pytest.raises(PcieError):
            fabric.post_write(stranger, 0x0, b"x")


class TestTransactions:
    def test_write_then_read_roundtrip(self):
        sim, fabric, host, device = build_fabric()
        results = []

        def proc(sim):
            yield fabric.post_write(device, 0x100, b"hello")
            data = yield fabric.read(device, 0x100, 5)
            results.append(data)

        sim.spawn(proc(sim))
        sim.run()
        assert results == [b"hello"]

    def test_peer_to_peer_write(self):
        sim, fabric, host, device = build_fabric()

        def proc(sim):
            yield fabric.post_write(host, 0x1000_0040, b"p2p!")

        sim.spawn(proc(sim))
        sim.run()
        assert device.handle_read(0x40, 4) == b"p2p!"

    def test_large_write_splits_into_mps_tlps(self):
        sim, fabric, host, device = build_fabric()

        def proc(sim):
            yield fabric.post_write(host, 0x1000_0000, bytes(1024))

        sim.spawn(proc(sim))
        sim.run()
        assert fabric.stats_tlps["MWr"] == 4  # 1024 / MPS 256

    def test_large_read_completion_split(self):
        sim, fabric, host, device = build_fabric()
        device.write_local(0, bytes(range(256)) * 4)
        results = []

        def proc(sim):
            data = yield fabric.read(host, 0x1000_0000, 1024)
            results.append(data)

        sim.spawn(proc(sim))
        sim.run()
        assert results[0] == bytes(range(256)) * 4
        assert fabric.stats_tlps["CplD"] == 4

    def test_read_time_includes_round_trip_latency(self):
        sim, fabric, host, device = build_fabric(latency=1e-6)
        finish = []

        def proc(sim):
            yield fabric.read(host, 0x1000_0000, 4)
            finish.append(sim.now)

        sim.spawn(proc(sim))
        sim.run()
        # Request crosses two hops (1 us total one-way) and completion the
        # same; serialization of tiny TLPs adds a little on top.
        assert finish[0] >= 2e-6
        assert finish[0] < 3e-6

    def test_bandwidth_limits_throughput(self):
        sim, fabric, host, device = build_fabric()
        finish = []
        total = 1 << 20  # 1 MiB

        def proc(sim):
            yield fabric.post_write(host, 0x0, length=total)
            finish.append(sim.now)

        sim.spawn(proc(sim))
        sim.run()
        # Gen3 x8 effective ~59.8 Gbps; 8 Mbit payload + TLP overheads.
        expected_min = (total * 8) / INNOVA2_LINK.effective_data_bps
        assert finish[0] >= expected_min

    def test_timing_only_write_has_no_side_effect(self):
        sim, fabric, host, device = build_fabric()

        def proc(sim):
            yield fabric.post_write(host, 0x1000_0000, length=512)

        sim.spawn(proc(sim))
        sim.run()
        assert device.handle_read(0, 4) == b"\x00\x00\x00\x00"
        assert device.stats_writes == 0

    def test_zero_length_read_rejected(self):
        _sim, fabric, host, _device = build_fabric()
        with pytest.raises(PcieError):
            fabric.read(host, 0x0, 0)


class TestMmio:
    def test_doorbell_callback_invoked(self):
        sim = Simulator()
        fabric = PcieFabric(sim)
        rings = []
        doorbell = MmioRegion("db", lambda addr, data: rings.append((addr, data)))
        host = MemoryRegion("host", 0x1000)
        fabric.attach(host)
        fabric.attach(doorbell)
        fabric.map_window(0x2000_0000, 0x1000, doorbell)

        def proc(sim):
            yield fabric.post_write(host, 0x2000_0800, b"\x01\x00\x00\x00")

        sim.spawn(proc(sim))
        sim.run()
        assert rings == [(0x800, b"\x01\x00\x00\x00")]

    def test_write_only_mmio_read_raises(self):
        region = MmioRegion("db", lambda a, d: None)
        with pytest.raises(PcieError):
            region.handle_read(0, 4)


class TestMemoryRegion:
    def test_out_of_bounds_read_raises(self):
        mem = MemoryRegion("m", 0x100)
        with pytest.raises(PcieError):
            mem.handle_read(0xF0, 0x20)

    def test_out_of_bounds_write_raises(self):
        mem = MemoryRegion("m", 0x100)
        with pytest.raises(PcieError):
            mem.handle_write(0xFF, b"ab")

    def test_stats_count_accesses(self):
        mem = MemoryRegion("m", 0x100)
        mem.handle_write(0, b"a")
        mem.handle_read(0, 1)
        assert mem.stats_writes == 1 and mem.stats_reads == 1


class TestLinkConfig:
    def test_gen3_x8_rate(self):
        config = PcieLinkConfig(generation=3, lanes=8)
        assert config.raw_bps == pytest.approx(63.0e9, rel=0.01)

    def test_gen5_x16_rate(self):
        config = PcieLinkConfig(generation=5, lanes=16)
        assert config.raw_bps == pytest.approx(504.1e9, rel=0.01)

    def test_invalid_generation(self):
        with pytest.raises(ValueError):
            PcieLinkConfig(generation=2)

    def test_invalid_lanes(self):
        with pytest.raises(ValueError):
            PcieLinkConfig(lanes=3)
