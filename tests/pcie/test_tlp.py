"""Unit tests for TLP sizing."""

import pytest

from repro.pcie import (
    COMPLETION_HEADER,
    DLLP_FRAMING,
    MEM_REQUEST_HEADER,
    Tlp,
    TlpType,
    read_wire_bytes,
    write_wire_bytes,
)
from repro.pcie.tlp import completion_chunks, split_write_bytes


class TestTlpSizes:
    def test_read_request_is_header_only(self):
        tlp = Tlp(TlpType.MEM_READ, 0x1000, length=4096)
        assert tlp.wire_bytes() == MEM_REQUEST_HEADER + DLLP_FRAMING

    def test_write_carries_payload(self):
        tlp = Tlp(TlpType.MEM_WRITE, 0x1000, data=b"x" * 64)
        assert tlp.wire_bytes() == MEM_REQUEST_HEADER + DLLP_FRAMING + 64

    def test_completion_with_data(self):
        tlp = Tlp(TlpType.COMPLETION_DATA, 0, data=b"x" * 128)
        assert tlp.wire_bytes() == COMPLETION_HEADER + DLLP_FRAMING + 128

    def test_data_sets_length(self):
        tlp = Tlp(TlpType.MEM_WRITE, 0, data=b"abc")
        assert tlp.length == 3


class TestSplitting:
    def test_write_split_at_mps(self):
        assert split_write_bytes(600, 256) == [256, 256, 88]

    def test_exact_multiple(self):
        assert split_write_bytes(512, 256) == [256, 256]

    def test_zero_length(self):
        assert split_write_bytes(0, 256) == []

    def test_completion_chunks_at_rcb(self):
        assert completion_chunks(300, 128) == [128, 128, 44]


class TestWireAccounting:
    def test_write_wire_bytes(self):
        # 600 B at MPS 256 -> 3 TLPs, each 24 B overhead.
        assert write_wire_bytes(600, 256) == 600 + 3 * 24

    def test_read_wire_bytes_small(self):
        request, completion = read_wire_bytes(64, rcb=256)
        assert request == 24
        assert completion == 64 + 20

    def test_read_wire_bytes_large_splits(self):
        request, completion = read_wire_bytes(1024, rcb=256,
                                              max_read_request=512)
        assert request == 2 * 24          # two read requests
        assert completion == 1024 + 4 * 20  # four RCB completions
