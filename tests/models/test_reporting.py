"""Tests for the report CLI (python -m repro)."""

import pytest

from repro import reporting


class TestFormatTable:
    def test_basic_alignment(self):
        text = reporting.format_table("T", [{"a": 1, "bb": 2.5},
                                            {"a": 100, "bb": 0.1}])
        lines = text.splitlines()
        assert lines[0] == "\n=== T ===".strip("\n") or "=== T ===" in text
        assert "100" in text and "2.50" in text

    def test_empty_rows(self):
        assert "(no rows)" in reporting.format_table("T", [])

    def test_column_selection(self):
        text = reporting.format_table("T", [{"a": 1, "b": 2}],
                                      columns=["b"])
        assert "b" in text and "a" not in text.splitlines()[1]


class TestAnalyticalRenderers:
    """Every instant renderer produces its banner and key content."""

    def test_table1(self):
        text = reporting.render_table1()
        assert "FlexDriver" in text and "NICA" in text

    def test_table2(self):
        assert "1133" in reporting.render_table2()

    def test_table3(self):
        text = reporting.render_table3()
        assert "x105.0" in text
        assert "832.7 KiB" in text

    def test_table4(self):
        assert "FLD runtime library" in reporting.render_table4()

    def test_table5(self):
        assert "PCIe core" in reporting.render_table5()

    def test_fig4(self):
        text = reporting.render_fig4()
        assert "line rate" in text and "queues" in text

    def test_fig7a(self):
        assert "25G-eth/50G-pcie" in reporting.render_fig7a()


class TestMain:
    def test_default_prints_analytical(self, capsys):
        assert reporting.main([]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out
        assert "--full" in out  # the hint line

    def test_named_section(self, capsys):
        assert reporting.main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out and "Table 1" not in out

    def test_unknown_section_errors(self, capsys):
        assert reporting.main(["nonsense"]) == 2
        assert "unknown sections" in capsys.readouterr().out

    def test_simulated_section_runs(self, capsys):
        assert reporting.main(["iot"]) == 0
        out = capsys.readouterr().out
        assert "tenant isolation" in out
