"""Tests for the performance model, area data and LOC counter."""

import os
import tempfile

import pytest

from repro.models import area, loc
from repro.models.perf import (
    FldPerfModel,
    ethernet_packet_rate,
    ethernet_throughput_bps,
    expected_echo_gbps,
    figure7a,
    zuc_model_gbps,
)


class TestPerfModel:
    def test_ethernet_rate_at_64b(self):
        # 25G / ((64+24)*8) = 35.5 Mpps
        assert ethernet_packet_rate(64, 25e9) == pytest.approx(35.5e6,
                                                               rel=0.01)

    def test_pcie_overhead_decreases_with_size(self):
        model = FldPerfModel()
        small = model.echo_throughput_bps(64) / ethernet_throughput_bps(
            64, 50e9)
        large = model.echo_throughput_bps(4096) / ethernet_throughput_bps(
            4096, 50e9)
        assert large > small

    def test_25g_config_meets_line_rate_above_128(self):
        """Paper: the 25G/50G-PCIe prototype meets line rate."""
        for row in figure7a(sizes=[128, 256, 512, 1024, 1500]):
            if row["config"] == "25G-eth/50G-pcie":
                assert row["fraction_of_ethernet"] == pytest.approx(1.0)

    def test_equal_rate_configs_lose_to_ethernet_at_small_sizes(self):
        rows = [r for r in figure7a(sizes=[64])
                if r["config"] == "100G-eth/100G-pcie"]
        assert rows[0]["fraction_of_ethernet"] < 0.7

    def test_fraction_at_512_large(self):
        """Paper claims ~95% at 512 B; our TLP accounting yields >75%
        with the same optimizations enabled (documented deviation)."""
        rows = [r for r in figure7a(sizes=[512])
                if r["config"] == "100G-eth/100G-pcie"]
        assert rows[0]["fraction_of_ethernet"] > 0.75

    def test_wqe_by_mmio_beats_doorbell_for_small_packets(self):
        with_mmio = FldPerfModel(wqe_by_mmio=True)
        without = FldPerfModel(wqe_by_mmio=False)
        assert (with_mmio.echo_packet_rate(64)
                > without.echo_packet_rate(64))

    def test_expected_echo_caps_at_wire(self):
        assert expected_echo_gbps(1500, 25e9, 50e9) < 25.0

    def test_zuc_model_monotone_in_size(self):
        values = [zuc_model_gbps(s) for s in (64, 256, 512, 2048, 8192)]
        assert values == sorted(values)

    def test_zuc_model_at_512_near_paper(self):
        """Paper: ~19.8 Gbps expected at 512 B requests on 25 GbE."""
        assert zuc_model_gbps(512) == pytest.approx(19.8, abs=1.0)


class TestAreaModel:
    def test_fld_smaller_than_bitw_designs(self):
        fld = area.fld_total_utilization()
        nica = next(a for a in area.TABLE1 if a.solution == "NICA")
        assert fld.lut < nica.utilization.lut
        assert fld.ff < nica.utilization.ff

    def test_fld_only_full_feature_design(self):
        rows = area.area_per_feature()
        full = [r for r in rows if r["full_features"] == 3]
        assert [r["solution"] for r in full] == ["FLD"]

    def test_nica_comparison_direction(self):
        """§7: NICA needs more of every resource than FLD + IoT."""
        comparison = area.nica_comparison()
        assert 0.2 < comparison["lut_overhead"] < 0.5
        assert 0.2 < comparison["ff_overhead"] < 0.55
        assert 0.4 < comparison["bram_overhead"] < 0.8
        assert comparison["nica_slowdown"] == pytest.approx(5.7)

    def test_table5_modules_present(self):
        names = {m.name for m in area.TABLE5}
        assert {"FLD", "PCIe core", "ZUC", "IP defrag.", "IoT auth."} <= names

    def test_module_lookup(self):
        assert area.module("FLD").clock_mhz == 250
        with pytest.raises(KeyError):
            area.module("nonexistent")


class TestLocCounter:
    def test_counts_code_not_comments_or_docstrings(self):
        source = '"""Module docstring\nspanning lines."""\n\n' \
                 '# comment\nx = 1\n\n\ndef f():\n' \
                 '    """Doc."""\n    return x  # trailing\n'
        with tempfile.NamedTemporaryFile("w", suffix=".py",
                                         delete=False) as handle:
            handle.write(source)
            path = handle.name
        try:
            assert loc.count_python_loc(path) == 3  # x=1, def, return
        finally:
            os.unlink(path)

    def test_table4_components_nonempty(self):
        table = loc.table4()
        assert set(table) == set(loc.COMPONENTS)
        for name, count in table.items():
            assert count > 10, f"{name} suspiciously small"

    def test_runtime_is_largest_software_component(self):
        """Matches the paper's proportions: the runtime library leads."""
        table = loc.table4()
        assert table["FLD runtime library"] == max(table.values())

    def test_repository_total_substantial(self):
        assert loc.repository_loc() > 4000

    def test_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            loc.count_paths(["no/such/path.py"])
