"""The memory model must reproduce the paper's Tables 2-3 and Fig. 4."""

import pytest

from repro.models.memory import (
    DriverParameters,
    KIB,
    MIB,
    XCKU15P_ON_CHIP_BYTES,
    desc_translation_bytes,
    data_translation_bytes,
    figure4_bandwidth_sweep,
    figure4_queue_sweep,
    fld_memory,
    round_pow2,
    shrink_ratios,
    software_memory,
    table3,
)


class TestRoundPow2:
    def test_powers_unchanged(self):
        assert round_pow2(1024) == 1024

    def test_rounds_up(self):
        assert round_pow2(1133) == 2048
        assert round_pow2(227) == 256

    def test_small_values(self):
        assert round_pow2(0) == 1
        assert round_pow2(1) == 1
        assert round_pow2(3) == 4


class TestTable2a:
    """Paper Table 2a derived values."""

    def setup_method(self):
        self.p = DriverParameters()

    def test_packet_rate_45mpps(self):
        assert self.p.packet_rate == pytest.approx(45e6, rel=0.01)

    def test_min_tx_descriptors_1133(self):
        assert self.p.n_txdesc == 1133

    def test_min_rx_descriptors_227(self):
        assert self.p.n_rxdesc == 227

    def test_tx_bdp_305kib(self):
        assert self.p.tx_bdp_bytes / KIB == pytest.approx(305, abs=1)

    def test_rx_bdp_61kib(self):
        assert self.p.rx_bdp_bytes / KIB == pytest.approx(61, abs=1)


class TestTable3Software:
    def setup_method(self):
        self.memory = software_memory(DriverParameters())

    def test_tx_rings_64mib(self):
        assert self.memory["tx_rings"] == 64 * MIB

    def test_tx_buffers_17_7mib(self):
        assert self.memory["tx_buffers"] / MIB == pytest.approx(17.7, abs=0.1)

    def test_rx_buffers_3_5mib(self):
        assert self.memory["rx_buffers"] / MIB == pytest.approx(3.5, abs=0.1)

    def test_cq_144kib(self):
        assert self.memory["completion_queues"] == 144 * KIB

    def test_rx_ring_4kib(self):
        assert self.memory["rx_ring"] == 4 * KIB

    def test_producer_indices_2052(self):
        assert self.memory["producer_indices"] == 2052

    def test_total_85mib(self):
        assert self.memory["total"] / MIB == pytest.approx(85.3, abs=0.2)


class TestTable3Fld:
    def setup_method(self):
        self.memory = fld_memory(DriverParameters())

    def test_tx_rings_32kib(self):
        assert self.memory["tx_rings"] / KIB == pytest.approx(32, abs=1)

    def test_tx_buffers_643kib(self):
        assert self.memory["tx_buffers"] / KIB == pytest.approx(643, abs=2)

    def test_rx_buffers_122kib(self):
        assert self.memory["rx_buffers"] / KIB == pytest.approx(122, abs=1)

    def test_cq_33_75kib(self):
        assert self.memory["completion_queues"] / KIB == pytest.approx(
            33.75, abs=0.1)

    def test_rx_ring_zero_host_resident(self):
        assert self.memory["rx_ring"] == 0

    def test_total_832kib(self):
        assert self.memory["total"] / KIB == pytest.approx(832.7, abs=2)

    def test_translation_tables_under_33kib(self):
        p = DriverParameters()
        assert desc_translation_bytes(p) <= 33 * KIB
        assert data_translation_bytes(p) <= 33 * KIB


class TestShrinkRatios:
    """The headline reductions of Table 3."""

    def setup_method(self):
        self.ratios = shrink_ratios(DriverParameters())

    def test_tx_rings_2080x(self):
        assert self.ratios["tx_rings"] == pytest.approx(2080, rel=0.01)

    def test_tx_buffers_28x(self):
        assert self.ratios["tx_buffers"] == pytest.approx(28.2, abs=0.2)

    def test_rx_buffers_30x(self):
        assert self.ratios["rx_buffers"] == pytest.approx(29.8, abs=0.2)

    def test_cq_4_27x(self):
        assert self.ratios["completion_queues"] == pytest.approx(4.27,
                                                                 abs=0.01)

    def test_total_105x(self):
        assert self.ratios["total"] == pytest.approx(105, abs=1)


class TestFigure4:
    def test_fld_fits_on_chip_at_400g_2048_queues(self):
        """The paper's scalability claim (§5.2.1)."""
        p = DriverParameters(bandwidth_bps=400e9, num_tx_queues=2048)
        assert fld_memory(p)["total"] < XCKU15P_ON_CHIP_BYTES

    def test_software_exceeds_on_chip_everywhere(self):
        for row in figure4_bandwidth_sweep():
            assert row["software_bytes"] > XCKU15P_ON_CHIP_BYTES

    def test_software_grows_with_queues_fld_nearly_flat(self):
        rows = figure4_queue_sweep()
        software_growth = rows[-1]["software_bytes"] / rows[0]["software_bytes"]
        fld_growth = rows[-1]["fld_bytes"] / rows[0]["fld_bytes"]
        assert software_growth > 8       # rings dominate at high Nq
        assert fld_growth < 1.1          # only the PI array grows

    def test_bandwidth_sweep_monotone(self):
        rows = figure4_bandwidth_sweep()
        software = [r["software_bytes"] for r in rows]
        fld = [r["fld_bytes"] for r in rows]
        assert software == sorted(software)
        assert fld == sorted(fld)

    def test_gap_is_orders_of_magnitude(self):
        for row in figure4_bandwidth_sweep():
            assert row["software_bytes"] / row["fld_bytes"] > 50
