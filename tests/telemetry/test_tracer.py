"""Unit tests for the Chrome-trace tracer and its null twin."""

import json

import pytest

from repro.telemetry import NULL_TRACER, Tracer


class TestTracer:
    def test_complete_span_fields(self):
        tracer = Tracer()
        tracer.complete("pcie", "nic.up", "Tlp", 1e-6, 3e-6,
                        {"bits": 800})
        (event,) = tracer.events
        assert event["ph"] == "X"
        assert event["ts"] == pytest.approx(1.0)   # microseconds
        assert event["dur"] == pytest.approx(2.0)
        assert event["args"] == {"bits": 800}

    def test_instant_and_counter(self):
        tracer = Tracer()
        tracer.instant("sim", "processes", "spawn", 0.5)
        tracer.counter("nic", "inbox", 0.5, {"depth": 3})
        phases = [e["ph"] for e in tracer.events]
        assert phases == ["i", "C"]

    def test_ids_stable_per_process_and_thread(self):
        tracer = Tracer()
        tracer.complete("pcie", "a", "x", 0, 1)
        tracer.complete("pcie", "a", "y", 1, 2)
        tracer.complete("pcie", "b", "z", 2, 3)
        tracer.complete("nic", "a", "w", 3, 4)
        events = tracer.events
        assert events[0]["pid"] == events[1]["pid"] == events[2]["pid"]
        assert events[0]["tid"] == events[1]["tid"]
        assert events[2]["tid"] != events[0]["tid"]
        assert events[3]["pid"] != events[0]["pid"]

    def test_metadata_names_processes_and_threads(self):
        tracer = Tracer()
        tracer.complete("pcie", "server.up", "Tlp", 0, 1)
        trace = tracer.chrome_trace()
        meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        names = {e["name"]: e["args"]["name"] for e in meta}
        assert names["process_name"] == "pcie"
        assert names["thread_name"] == "server.up"

    def test_event_cap_counts_drops(self):
        tracer = Tracer(max_events=2)
        for i in range(5):
            tracer.instant("p", "t", f"e{i}", i)
        assert len(tracer) == 2
        assert tracer.dropped == 3
        assert tracer.chrome_trace()["otherData"]["droppedEvents"] == 3

    def test_json_round_trips(self):
        tracer = Tracer()
        tracer.complete("p", "t", "span", 0.0, 1e-3)
        parsed = json.loads(tracer.to_json())
        assert "traceEvents" in parsed
        assert parsed["displayTimeUnit"] == "ns"

    def test_write_produces_loadable_file(self, tmp_path):
        tracer = Tracer()
        tracer.instant("p", "t", "tick", 1.0)
        path = tmp_path / "trace.json"
        tracer.write(str(path))
        parsed = json.loads(path.read_text())
        assert any(e.get("name") == "tick" for e in parsed["traceEvents"])

    def test_negative_duration_clamped(self):
        tracer = Tracer()
        tracer.complete("p", "t", "odd", 2.0, 1.0)
        assert tracer.events[0]["dur"] == 0.0


class TestNullTracer:
    def test_records_nothing(self):
        NULL_TRACER.complete("p", "t", "x", 0, 1)
        NULL_TRACER.instant("p", "t", "x", 0)
        NULL_TRACER.counter("p", "x", 0, {"v": 1})
        assert len(NULL_TRACER) == 0
        assert NULL_TRACER.events == []
        assert NULL_TRACER.enabled is False

    def test_chrome_trace_still_valid(self):
        parsed = json.loads(NULL_TRACER.to_json())
        assert parsed["traceEvents"] == []

    def test_write_valid_empty_trace(self, tmp_path):
        path = tmp_path / "null.json"
        NULL_TRACER.write(str(path))
        assert json.loads(path.read_text())["traceEvents"] == []


class TestTracerApiParity:
    def test_null_tracer_mirrors_tracer_interface(self):
        """Introspective shared-interface check: every public method of
        the real tracer exists on the null twin with the same parameter
        names, so call sites can hold either without branching."""
        import inspect

        from repro.telemetry.trace import NullTracer

        for name, member in inspect.getmembers(Tracer):
            if name.startswith("_") or not callable(member):
                continue
            twin = getattr(NullTracer, name, None)
            assert twin is not None, f"NullTracer missing {name!r}"
            real = [p for p in inspect.signature(member).parameters]
            null = [p for p in inspect.signature(twin).parameters]
            assert real == null, f"signature drift on {name!r}"

    def test_null_tracer_mirrors_properties(self):
        from repro.telemetry.trace import NullTracer

        tracer, null = Tracer(), NullTracer()
        assert hasattr(null, "events")
        assert hasattr(null, "enabled")
        assert type(len(null)) is type(len(tracer))
