"""Latency attribution reports: exact (from traces) and approximate
(from merged registry histograms)."""

import pytest

from repro.telemetry import MetricsRegistry, SpanRecorder
from repro.telemetry.latency import (
    STAGE_ORDER,
    build_report,
    render_report,
    report_from_registry,
)


def _record_trace(spans, stages, start=0.0):
    """One trace whose spans tile [start, start+sum) back to back."""
    ctx = spans.start_trace("pkt", start)
    at = start
    for stage, seconds, kind in stages:
        spans.record(ctx, stage, at, at + seconds, kind=kind)
        at += seconds
    spans.end_trace(ctx, at)
    return at - start


class TestBuildReport:
    def test_stage_rows_and_reconciliation(self):
        spans = SpanRecorder()
        for _ in range(4):
            _record_trace(spans, [
                ("pcie.doorbell", 1e-6, "service"),
                ("wire", 2e-6, "service"),
                ("host.rx", 0.5e-6, "service"),
            ])
        report = build_report(spans)
        assert report["traces"] == 4
        assert report["orphaned_spans"] == 0
        assert report["reconciliation"]["within_1pct"]
        by_stage = {(r["stage"], r["kind"]): r for r in report["stages"]}
        assert by_stage[("wire", "service")]["mean_us"] == \
            pytest.approx(2.0)
        assert report["e2e"]["mean_us"] == pytest.approx(3.5)

    def test_rows_follow_datapath_order(self):
        spans = SpanRecorder()
        _record_trace(spans, [
            ("host.rx", 1e-6, "service"),
            ("pcie.doorbell", 1e-6, "service"),
            ("nic.tx", 1e-6, "queue"),
            ("nic.tx", 1e-6, "service"),
        ])
        report = build_report(spans)
        stages = [(r["stage"], r["kind"]) for r in report["stages"]]
        # Datapath order, queue before service within a stage.
        assert stages == [("pcie.doorbell", "service"),
                          ("nic.tx", "queue"), ("nic.tx", "service"),
                          ("host.rx", "service")]
        assert all(s in STAGE_ORDER for s, _ in stages)

    def test_residue_appears_as_unattributed_row(self):
        spans = SpanRecorder()
        ctx = spans.start_trace("pkt", 0.0)
        spans.record(ctx, "wire", 0.0, 4e-6)
        spans.end_trace(ctx, 10e-6)  # 6 us uncovered
        report = build_report(spans)
        residue = [r for r in report["stages"]
                   if r["stage"] == "(unattributed)"]
        assert len(residue) == 1
        assert residue[0]["mean_us"] == pytest.approx(6.0)
        assert report["reconciliation"]["within_1pct"]

    def test_empty_recorder_is_harmless(self):
        report = build_report(SpanRecorder())
        assert report["traces"] == 0
        assert report["stages"] == []


class TestRegistryReport:
    def test_roundtrip_through_registry(self):
        registry = MetricsRegistry()
        spans = SpanRecorder(registry=registry)
        for _ in range(8):
            _record_trace(spans, [
                ("pcie.doorbell", 1e-6, "service"),
                ("wire", 2e-6, "service"),
            ])
        report = report_from_registry(registry)
        assert report["source"] == "registry"
        by_stage = {(r["stage"], r["kind"]): r for r in report["stages"]}
        assert by_stage[("wire", "service")]["count"] == 8
        # log2 buckets: estimate within a factor of two of the truth.
        assert 1e-6 <= by_stage[("wire", "service")]["p50_us"] * 1e-6 \
            <= 4e-6
        assert report["e2e"]["count"] == 8

    def test_merged_registries_accumulate(self):
        # Two independent runs (sweep points) merged through the
        # registry export — the PR 2 cache path.
        merged = MetricsRegistry()
        for _ in range(2):
            registry = MetricsRegistry()
            spans = SpanRecorder(registry=registry)
            _record_trace(spans, [("wire", 2e-6, "service")])
            merged.merge_from(registry.to_dict())
        report = report_from_registry(merged)
        (row,) = [r for r in report["stages"] if r["stage"] == "wire"]
        assert row["count"] == 2


class TestRendering:
    def test_render_mentions_reconciliation(self):
        spans = SpanRecorder()
        _record_trace(spans, [("wire", 2e-6, "service")])
        text = render_report(build_report(spans))
        assert "wire" in text
        assert "reconciliation" in text
        assert "OK" in text

    def test_render_registry_report_has_no_reconciliation_line(self):
        registry = MetricsRegistry()
        spans = SpanRecorder(registry=registry)
        _record_trace(spans, [("wire", 2e-6, "service")])
        text = render_report(report_from_registry(registry))
        assert "wire" in text
        assert "reconciliation" not in text
