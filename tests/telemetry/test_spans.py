"""Unit tests for the causal span layer: recorder lifecycle, sampling,
serialization-boundary bridges, and attribution exactness."""

import pytest

from repro.telemetry import (
    MetricsRegistry,
    NULL_SPANS,
    NullSpanRecorder,
    SpanRecorder,
    attribute_trace,
)


class TestRecorderLifecycle:
    def test_start_record_end(self):
        spans = SpanRecorder()
        ctx = spans.start_trace("pkt0", 0.0)
        assert ctx is not None
        spans.record(ctx, "wire", 1.0, 2.0)
        spans.end_trace(ctx, 5.0)
        trace = spans.get_trace(ctx)
        assert trace.finished
        assert trace.duration == pytest.approx(5.0)
        assert [s.stage for s in trace.spans] == ["wire"]

    def test_enter_exit_pairs(self):
        spans = SpanRecorder()
        ctx = spans.start_trace("pkt", 0.0)
        handle = spans.enter(ctx, "nic.tx", 1.0)
        spans.exit(handle, 3.0)
        spans.end_trace(ctx, 4.0)
        (span,) = spans.get_trace(ctx).spans
        assert (span.start, span.end) == (1.0, 3.0)
        assert span.duration == pytest.approx(2.0)

    def test_orphan_detection(self):
        spans = SpanRecorder()
        ctx = spans.start_trace("pkt", 0.0)
        spans.enter(ctx, "nic.rx", 1.0)  # never exited
        spans.end_trace(ctx, 2.0)
        assert len(spans.orphan_spans()) == 1
        assert spans.orphan_spans()[0].stage == "nic.rx"

    def test_double_end_is_idempotent(self):
        spans = SpanRecorder()
        ctx = spans.start_trace("pkt", 0.0)
        spans.end_trace(ctx, 1.0)
        spans.end_trace(ctx, 9.0)
        assert spans.get_trace(ctx).end == 1.0

    def test_events_attach_to_trace(self):
        spans = SpanRecorder()
        ctx = spans.start_trace("pkt", 0.0)
        spans.event(ctx, "rdma.retransmit:psn=3", 1.5)
        assert spans.get_trace(ctx).events == [(1.5, "rdma.retransmit:psn=3")]

    def test_max_traces_cap_counts_drops(self):
        spans = SpanRecorder(max_traces=2)
        assert spans.start_trace("a", 0.0) is not None
        assert spans.start_trace("b", 0.0) is not None
        assert spans.start_trace("c", 0.0) is None
        assert spans.dropped == 1


class TestSampling:
    def test_one_in_n_is_deterministic(self):
        spans = SpanRecorder(sample_rate=3)
        sampled = [spans.start_trace(f"p{i}", 0.0) is not None
                   for i in range(9)]
        assert sampled == [True, False, False] * 3

    def test_rate_one_samples_everything(self):
        spans = SpanRecorder(sample_rate=1)
        assert all(spans.start_trace(f"p{i}", 0.0) is not None
                   for i in range(5))

    def test_rate_below_one_rejected(self):
        with pytest.raises(ValueError):
            SpanRecorder(sample_rate=0)

    def test_sampler_accounting_partitions_every_offer(self):
        spans = SpanRecorder(sample_rate=3)
        for i in range(10):
            spans.start_trace(f"p{i}", 0.0)
        assert spans.seen == 10
        assert spans.sampled == 4
        assert spans.skipped == 6
        assert spans.dropped == 0
        assert spans.sampled + spans.skipped + spans.dropped == spans.seen
        export = spans.to_dict()
        assert export["sampled"] == 4 and export["skipped"] == 6

    def test_cap_overflow_counts_as_dropped_not_skipped(self):
        spans = SpanRecorder(sample_rate=1, max_traces=2)
        for i in range(5):
            spans.start_trace(f"p{i}", 0.0)
        assert spans.sampled == 2
        assert spans.dropped == 3
        assert spans.skipped == 0

    def test_sampler_counters_feed_the_registry(self):
        from repro.telemetry import MetricsRegistry
        registry = MetricsRegistry()
        spans = SpanRecorder(sample_rate=2, max_traces=2, registry=registry)
        for i in range(6):
            spans.start_trace(f"p{i}", 0.0)
        assert registry.counter("spans.sampler.sampled").value == 2
        assert registry.counter("spans.sampler.skipped").value == 3
        assert registry.counter("spans.sampler.dropped").value == 1


class TestStashClaim:
    def test_roundtrip_is_consume_once(self):
        spans = SpanRecorder()
        ctx = spans.start_trace("pkt", 0.0)
        key = ("wqe", "server.nic", 7, 0)
        spans.stash(key, ctx)
        assert spans.claim(key) is ctx
        assert spans.claim(key) is None  # consumed

    def test_none_context_is_not_stashed(self):
        spans = SpanRecorder()
        spans.stash(("wqe", "nic", 1, 0), None)
        assert spans.pending_stashes() == []

    def test_pending_stashes_report_leaks(self):
        spans = SpanRecorder()
        ctx = spans.start_trace("pkt", 0.0)
        spans.stash(("wqe", "nic", 1, 4), ctx)
        assert spans.pending_stashes() == [("wqe", "nic", 1, 4)]


class TestAttribution:
    def _trace(self, spans, pieces, start=0.0, end=10.0):
        ctx = spans.start_trace("pkt", start)
        for stage, s, e, kind in pieces:
            spans.record(ctx, stage, s, e, kind=kind)
        spans.end_trace(ctx, end)
        return spans.get_trace(ctx)

    def test_disjoint_spans_sum_exactly(self):
        spans = SpanRecorder()
        trace = self._trace(spans, [
            ("a", 0.0, 4.0, "service"),
            ("b", 4.0, 10.0, "service"),
        ])
        totals, residue = attribute_trace(trace)
        assert totals == {("a", "service"): pytest.approx(4.0),
                          ("b", "service"): pytest.approx(6.0)}
        assert residue == pytest.approx(0.0)

    def test_nested_span_wins_innermost(self):
        # A queue wait nested inside an engine span: the overlap goes to
        # the inner (later-entered) span, never double-counted.
        spans = SpanRecorder()
        trace = self._trace(spans, [
            ("engine", 0.0, 10.0, "service"),
            ("engine", 2.0, 5.0, "queue"),
        ])
        totals, residue = attribute_trace(trace)
        assert totals[("engine", "queue")] == pytest.approx(3.0)
        assert totals[("engine", "service")] == pytest.approx(7.0)
        assert residue == pytest.approx(0.0)

    def test_uncovered_time_is_unattributed(self):
        spans = SpanRecorder()
        trace = self._trace(spans, [("a", 2.0, 4.0, "service")])
        totals, residue = attribute_trace(trace)
        assert totals[("a", "service")] == pytest.approx(2.0)
        assert residue == pytest.approx(8.0)

    def test_spans_clamped_to_root_interval(self):
        spans = SpanRecorder()
        trace = self._trace(spans, [("a", -5.0, 20.0, "service")])
        totals, residue = attribute_trace(trace)
        assert totals[("a", "service")] == pytest.approx(10.0)
        assert residue == pytest.approx(0.0)

    def test_partition_reconciles_with_duration(self):
        # Adversarial overlap soup: sums + residue == e2e regardless.
        spans = SpanRecorder()
        trace = self._trace(spans, [
            ("a", 0.0, 6.0, "service"),
            ("b", 1.0, 3.0, "service"),
            ("c", 2.0, 8.0, "queue"),
            ("a", 7.5, 9.0, "queue"),
        ])
        totals, residue = attribute_trace(trace)
        assert sum(totals.values()) + residue == pytest.approx(10.0)

    def test_unfinished_trace_rejected(self):
        spans = SpanRecorder()
        ctx = spans.start_trace("pkt", 0.0)
        with pytest.raises(ValueError):
            attribute_trace(spans.get_trace(ctx))


class TestRegistryFeed:
    def test_finished_trace_feeds_stage_histograms(self):
        registry = MetricsRegistry()
        spans = SpanRecorder(registry=registry)
        ctx = spans.start_trace("pkt", 0.0)
        spans.record(ctx, "wire", 1.0, 3.0)
        spans.end_trace(ctx, 4.0)
        assert registry.histogram("spans.e2e").count == 1
        assert registry.histogram("spans.stage.wire.service").total == \
            pytest.approx(2.0)
        assert registry.histogram("spans.unattributed").total == \
            pytest.approx(2.0)


class TestNullRecorder:
    def test_start_trace_returns_none(self):
        assert NULL_SPANS.start_trace("pkt", 0.0) is None
        assert not NULL_SPANS.enabled
        assert len(NULL_SPANS) == 0

    def test_mirrors_real_recorder_interface(self):
        """Introspective parity: every public method/property of the real
        recorder exists on the null twin with a compatible signature."""
        import inspect
        for name, member in inspect.getmembers(SpanRecorder):
            if name.startswith("_"):
                continue
            twin = getattr(NullSpanRecorder, name, None)
            assert twin is not None, f"NullSpanRecorder missing {name!r}"
            if callable(member) and callable(twin):
                real_params = list(
                    inspect.signature(member).parameters)
                null_params = list(
                    inspect.signature(twin).parameters)
                assert real_params == null_params, \
                    f"signature drift on {name!r}"

    def test_exports_empty_schema(self):
        export = NULL_SPANS.to_dict()
        assert export["traces"] == []
        assert "schema" in export
