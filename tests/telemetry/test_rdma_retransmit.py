"""RoCE retransmission under injected packet loss.

Deterministic fault injection through :attr:`RdmaEngine.drop_filter`:
the first data segment out of the client is dropped on the floor, the
go-back-N timer fires, the retransmitted copy delivers, and the
telemetry counters record exactly what happened.
"""

from repro.net import Bth
from repro.sim import Simulator
from repro.telemetry import Telemetry
from repro.testbed import make_remote_pair

CLIENT_MAC = "02:00:00:00:00:01"
SERVER_MAC = "02:00:00:00:00:02"


def build(sim):
    client, server = make_remote_pair(sim)
    client.add_vport_for_mac(1, CLIENT_MAC)
    server.add_vport_for_mac(1, SERVER_MAC)
    cep = client.driver.create_rc_endpoint(1, CLIENT_MAC, "10.0.0.1",
                                           buffer_size=8192)
    sep = server.driver.create_rc_endpoint(1, SERVER_MAC, "10.0.0.2",
                                           buffer_size=8192)
    cep.post_rx_buffers(64)
    sep.post_rx_buffers(64)
    cep.connect(SERVER_MAC, "10.0.0.2", sep.qpn)
    sep.connect(CLIENT_MAC, "10.0.0.1", cep.qpn)
    return client, server, cep, sep


def drop_first_data_segment(state):
    """A drop filter discarding the first non-ack frame it sees."""

    def drop(qp, frame):
        bth = frame.find(Bth)
        if bth is not None and not bth.is_ack and state["drops"] == 0:
            state["drops"] += 1
            return True
        return False

    return drop


class TestRetransmit:
    def test_dropped_segment_is_retransmitted_and_delivered(self):
        telemetry = Telemetry(trace=False)
        sim = Simulator(telemetry=telemetry)
        client, _server, cep, sep = build(sim)
        state = {"drops": 0}
        client.nic.rdma.drop_filter = drop_first_data_segment(state)
        payload = b"lost then found"
        received = []

        def receiver(sim):
            message, _cqe = yield sep.messages.get()
            received.append(message)

        def sender(sim):
            yield cep.post_send(payload)

        sim.spawn(receiver(sim))
        sim.spawn(sender(sim))
        sim.run(until=0.05)

        assert state["drops"] == 1
        assert received == [payload]  # eventual delivery
        assert cep.qp.stats_retransmits >= 1
        metrics = telemetry.metrics
        assert metrics.counter("client.nic.rdma.retransmits").value >= 1
        assert metrics.counter("client.nic.rdma.injected_drops").value == 1
        assert client.nic.rdma.stats_injected_drops == 1

    def test_no_loss_no_retransmits(self):
        telemetry = Telemetry(trace=False)
        sim = Simulator(telemetry=telemetry)
        _client, _server, cep, sep = build(sim)
        received = []

        def receiver(sim):
            message, _cqe = yield sep.messages.get()
            received.append(message)

        def sender(sim):
            yield cep.post_send(b"clean run")

        sim.spawn(receiver(sim))
        sim.spawn(sender(sim))
        sim.run(until=0.05)

        assert received == [b"clean run"]
        assert telemetry.metrics.counter(
            "client.nic.rdma.retransmits").value == 0
        assert cep.qp.stats_retransmits == 0

    def test_multi_segment_message_recovers_from_mid_loss(self):
        """Drop the second segment of a 3-segment message: go-back-N
        resends from the gap and the message still assembles in order."""
        telemetry = Telemetry(trace=False)
        sim = Simulator(telemetry=telemetry)
        client, _server, cep, sep = build(sim)
        seen = {"count": 0}
        state = {"drops": 0}

        def drop_second(qp, frame):
            bth = frame.find(Bth)
            if bth is None or bth.is_ack:
                return False
            seen["count"] += 1
            if seen["count"] == 2 and state["drops"] == 0:
                state["drops"] += 1
                return True
            return False

        client.nic.rdma.drop_filter = drop_second
        payload = bytes(range(256)) * 12  # 3072 B -> 3 segments at MTU 1024
        received = []

        def receiver(sim):
            message, _cqe = yield sep.messages.get()
            received.append(message)

        def sender(sim):
            yield cep.post_send(payload)

        sim.spawn(receiver(sim))
        sim.spawn(sender(sim))
        sim.run(until=0.05)

        assert state["drops"] == 1
        assert received == [payload]
        assert cep.qp.stats_retransmits >= 1
        # The receiver saw at least one out-of-sequence segment (the one
        # after the hole) and counted it as a duplicate/out-of-order.
        assert telemetry.metrics.counter(
            "server.nic.rdma.duplicate_segments").value >= 1

    def test_dropped_ack_triggers_resend_not_duplication(self):
        """Losing the ACK retransmits data; the receiver discards the
        duplicate and re-acks, so the message is delivered exactly once."""
        telemetry = Telemetry(trace=False)
        sim = Simulator(telemetry=telemetry)
        client, server, cep, sep = build(sim)
        state = {"drops": 0}

        def drop_first_ack(qp, frame):
            bth = frame.find(Bth)
            if bth is not None and bth.is_ack and state["drops"] == 0:
                state["drops"] += 1
                return True
            return False

        server.nic.rdma.drop_filter = drop_first_ack
        received = []

        def receiver(sim):
            while True:
                message, _cqe = yield sep.messages.get()
                received.append(message)

        def sender(sim):
            yield cep.post_send(b"ack goes missing")

        sim.spawn(receiver(sim))
        sim.spawn(sender(sim))
        sim.run(until=0.05)

        assert state["drops"] == 1
        assert received == [b"ack goes missing"]  # exactly once
        assert cep.qp.stats_retransmits >= 1
        assert telemetry.metrics.counter(
            "server.nic.rdma.duplicate_segments").value >= 1


class TestRetransmitSpanPropagation:
    """Satellite of the span layer: a retransmitted segment must stay on
    the original packet's trace — same span tree, a ``rdma.retransmit``
    event, and an ``rdma`` span that still closes on the eventual ack."""

    def _run_lossy_send(self, payload=b"lost then found"):
        telemetry = Telemetry(trace=False, spans=True)
        sim = Simulator(telemetry=telemetry)
        client, _server, cep, sep = build(sim)
        state = {"drops": 0}
        client.nic.rdma.drop_filter = drop_first_data_segment(state)
        spans = telemetry.spans
        received = []

        def receiver(sim):
            message, cqe = yield sep.messages.get()
            received.append((message, cqe))
            spans.end_trace(cqe.trace_ctx, sim.now)

        def sender(sim):
            ctx = spans.start_trace("rdma.msg0", sim.now)
            state["ctx"] = ctx
            yield cep.post_send(payload, trace_ctx=ctx)

        sim.spawn(receiver(sim))
        sim.spawn(sender(sim))
        sim.run(until=0.05)
        assert state["drops"] == 1
        assert [m for m, _ in received] == [payload]
        return spans, state["ctx"], received

    def test_retransmit_event_lands_on_original_trace(self):
        spans, ctx, _ = self._run_lossy_send()
        trace = spans.get_trace(ctx)
        assert trace is not None
        assert any(name.startswith("rdma.retransmit:psn=")
                   for _, name in trace.events)

    def test_rdma_span_closes_on_eventual_ack(self):
        spans, ctx, _ = self._run_lossy_send()
        trace = spans.get_trace(ctx)
        rdma_spans = [s for s in trace.spans if s.stage == "rdma"]
        assert rdma_spans, "no rdma span recorded"
        assert all(s.end is not None for s in rdma_spans)
        # The recovery is visible as extra latency inside the rdma span:
        # it spans the timeout + resend, not just one flight.
        assert max(s.duration for s in rdma_spans) > 100e-6

    def test_retransmitted_copy_keeps_the_trace_context(self):
        spans, ctx, received = self._run_lossy_send()
        trace = spans.get_trace(ctx)
        # Both the dropped original and the retransmitted copy carried
        # the context; only delivered frames record wire spans, and the
        # receive completion hands the same trace back to the app.
        (_, cqe) = received[0]
        assert cqe.trace_ctx is not None
        assert cqe.trace_ctx.trace_id == trace.trace_id
        assert trace.finished
        wire = [s for s in trace.spans if s.stage == "wire"]
        assert wire, "delivered frame recorded no wire span"

    def test_no_orphans_after_recovery(self):
        spans, _ctx, _ = self._run_lossy_send()
        assert spans.orphan_spans() == []
        assert spans.pending_stashes() == []
