"""Telemetry wired into the datapath: PCIe byte accounting that matches
the analytic model, engine/queue instrumentation, and the trace CLI."""

import json

from repro.pcie import MemoryRegion, PcieFabric, PcieLinkConfig
from repro.pcie.tlp import read_wire_bytes, write_wire_bytes
from repro.reporting import main
from repro.sim import Simulator, Store
from repro.telemetry import Telemetry


def build_fabric(telemetry):
    sim = Simulator(telemetry=telemetry)
    fabric = PcieFabric(sim)
    config = PcieLinkConfig()
    host = MemoryRegion("host", 1 << 20)
    device = MemoryRegion("device", 1 << 16)
    fabric.attach(host, config)
    fabric.attach(device, config)
    fabric.map_window(0x0000_0000, 1 << 20, host)
    fabric.map_window(0x1000_0000, 1 << 16, device)
    return sim, fabric, host, device, config


class TestPcieAccounting:
    def test_write_bytes_match_analytic_model(self):
        telemetry = Telemetry(trace=False)
        sim, fabric, host, device, config = build_fabric(telemetry)
        length = 1000

        def proc(sim):
            yield fabric.post_write(host, 0x1000_0000, bytes(length))

        sim.spawn(proc(sim))
        sim.run()
        metrics = telemetry.metrics
        up_hdr = metrics.counter("pcie.host.up.header_bytes").value
        up_pay = metrics.counter("pcie.host.up.payload_bytes").value
        expected_total = write_wire_bytes(length, config.max_payload_size)
        assert up_pay == length
        assert up_hdr == expected_total - length
        # The switch forwards the same TLPs down the target's lane.
        assert metrics.counter("pcie.device.down.header_bytes").value == up_hdr
        assert metrics.counter("pcie.device.down.payload_bytes").value == up_pay

    def test_read_bytes_match_analytic_model(self):
        telemetry = Telemetry(trace=False)
        sim, fabric, host, device, config = build_fabric(telemetry)
        length = 1024

        def proc(sim):
            yield fabric.read(device, 0x0, length)

        sim.spawn(proc(sim))
        sim.run()
        # The fabric issues a single request TLP, so align the model's
        # max_read_request with the read size; completion bytes are
        # RCB-split identically either way.
        request_bytes, completion_bytes = read_wire_bytes(
            length, config.read_completion_boundary,
            max_read_request=length)
        metrics = telemetry.metrics
        requester_up = (
            metrics.counter("pcie.device.up.header_bytes").value
            + metrics.counter("pcie.device.up.payload_bytes").value)
        completer_up = (
            metrics.counter("pcie.host.up.header_bytes").value
            + metrics.counter("pcie.host.up.payload_bytes").value)
        assert requester_up == request_bytes
        assert completer_up == completion_bytes
        assert metrics.counter("pcie.device.up.payload_bytes").value == 0
        assert (metrics.counter("pcie.host.up.payload_bytes").value
                == length)

    def test_tlp_counts_per_lane(self):
        telemetry = Telemetry(trace=False)
        sim, fabric, host, device, config = build_fabric(telemetry)

        def proc(sim):
            yield fabric.post_write(host, 0x1000_0000, bytes(600))

        sim.spawn(proc(sim))
        sim.run()
        # 600 B at MPS 256 -> 3 write TLPs.
        assert telemetry.metrics.counter("pcie.host.up.tlps").value == 3
        assert telemetry.metrics.counter("pcie.device.down.tlps").value == 3

    def test_link_utilization_probe(self):
        telemetry = Telemetry(trace=False)
        sim, fabric, host, device, config = build_fabric(telemetry)

        def proc(sim):
            yield fabric.post_write(host, 0x1000_0000, bytes(100))

        sim.spawn(proc(sim))
        sim.run()
        sampled = telemetry.metrics.sample_probes()
        assert sampled["pcie.host.up.bits"] > 0
        assert sampled["pcie.device.down.bits"] > 0

    def test_pcie_spans_traced(self):
        telemetry = Telemetry(trace=True)
        sim, fabric, host, device, config = build_fabric(telemetry)

        def proc(sim):
            yield fabric.post_write(host, 0x1000_0000, bytes(512))

        sim.spawn(proc(sim))
        sim.run()
        trace = telemetry.tracer.chrome_trace()["traceEvents"]
        processes = {e["args"]["name"] for e in trace
                     if e.get("ph") == "M" and e["name"] == "process_name"}
        assert "pcie" in processes
        assert any(e.get("ph") == "X" and e.get("name") == "Tlp"
                   for e in trace)


class TestEngineInstrumentation:
    def test_process_and_event_counters(self):
        telemetry = Telemetry(trace=False)
        sim = Simulator(telemetry=telemetry)

        def proc(sim):
            yield sim.timeout(1.0)

        sim.spawn(proc(sim), name="worker")
        sim.run()
        metrics = telemetry.metrics
        assert metrics.counter("sim.processes.spawned").value == 1
        assert metrics.counter("sim.processes.finished").value == 1
        assert metrics.counter("sim.events.processed").value >= 1

    def test_store_depth_gauge(self):
        telemetry = Telemetry(trace=False)
        sim = Simulator(telemetry=telemetry)
        store = Store(sim, name="inbox")
        store.try_put("a")
        store.try_put("b")
        gauge = telemetry.metrics.gauge("store.inbox.depth")
        assert gauge.peak == 2

    def test_spawn_instants_traced(self):
        telemetry = Telemetry(trace=True)
        sim = Simulator(telemetry=telemetry)

        def proc(sim):
            yield sim.timeout(0)

        sim.spawn(proc(sim), name="p0")
        sim.run()
        names = {e.get("name") for e in telemetry.tracer.events}
        assert "spawn:p0" in names
        assert "finish:p0" in names

    def test_disabled_telemetry_registers_nothing(self):
        sim = Simulator()  # NULL_TELEMETRY
        store = Store(sim, name="inbox")
        store.try_put("x")
        assert sim.telemetry.snapshot().as_dict() == {}


class TestEchoRunCounters:
    def test_nic_and_fld_metrics_populated(self):
        from repro.experiments.echo import echo_throughput
        telemetry = Telemetry(trace=False)
        result = echo_throughput("flde-remote", 256, count=20,
                                 telemetry=telemetry)
        assert result["received"] == 20
        metrics = telemetry.metrics
        assert metrics.counter("nic.client.nic.tx.wqes").value >= 20
        assert metrics.counter("nic.server.nic.rx.packets").value >= 20
        assert metrics.counter("nic.client.nic.cqes").value > 0
        # FLD counted every echoed packet it transmitted.
        snap = metrics.snapshot()
        fld_tx = [name for name in snap.as_dict()
                  if name.startswith("fld.") and name.endswith("tx.packets")]
        assert fld_tx and all(snap[name] >= 20 for name in fld_tx)
        # Per-lane PCIe byte split is visible (Fig. 7a accounting).
        assert metrics.counter("pcie.server.nic.up.header_bytes").value > 0
        # Translation-table probes come back through the registry.
        sampled = metrics.sample_probes()
        assert any(".xlt." in name and name.endswith(".lookups")
                   for name in sampled)


class TestTraceCli:
    def test_trace_fig7b_emits_chrome_trace(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        rc = main(["trace", "fig7b", "-o", str(out), "--count", "30"])
        assert rc == 0
        trace = json.loads(out.read_text())
        events = trace["traceEvents"]
        processes = {e["args"]["name"] for e in events
                     if e.get("ph") == "M" and e["name"] == "process_name"}
        assert "pcie" in processes
        assert any(p.startswith("nic.") for p in processes)
        # PCIe link spans and NIC queue events are both present.
        assert any(e.get("ph") == "X" and e.get("name") == "Tlp"
                   for e in events)
        threads = {e["args"]["name"] for e in events
                   if e.get("ph") == "M" and e["name"] == "thread_name"}
        assert any(t.startswith("sq") or t.startswith("rq")
                   for t in threads)
        assert "traced fig7b" in capsys.readouterr().out

    def test_trace_with_metrics_dump(self, tmp_path, capsys):
        out = tmp_path / "t.json"
        metrics_out = tmp_path / "m.json"
        rc = main(["trace", "fig7b", "-o", str(out), "--count", "10",
                   "--metrics", str(metrics_out)])
        assert rc == 0
        exported = json.loads(metrics_out.read_text())
        assert exported["counters"]
        assert any(name.startswith("pcie.") for name in exported["counters"])

    def test_trace_unknown_experiment(self, tmp_path, capsys):
        rc = main(["trace", "nope", "-o", str(tmp_path / "x.json")])
        assert rc == 2
        assert "unknown experiment" in capsys.readouterr().out


class TestCliCompat:
    def test_legacy_section_invocation(self, capsys):
        assert main(["table4"]) == 0
        assert "Table 4" in capsys.readouterr().out

    def test_legacy_unknown_section(self, capsys):
        assert main(["bogus"]) == 2

    def test_legacy_default_prints_analytical(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "--full" in out

    def test_tables_subcommand(self, capsys):
        assert main(["tables", "table4"]) == 0
        assert "Table 4" in capsys.readouterr().out

    def test_figures_subcommand(self, capsys):
        assert main(["figures", "fig7a"]) == 0
        assert "Fig. 7a" in capsys.readouterr().out

    def test_subcommand_rejects_wrong_group(self, capsys):
        assert main(["tables", "fig7a"]) == 2

    def test_list_flag(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig7b" in out and "traceable" in out
