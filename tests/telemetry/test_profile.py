"""Simulator profiler: event attribution, determinism, NULL fast path."""

import json
import random

import pytest

from repro.sim import Simulator
from repro.telemetry import (
    NULL_PROFILER,
    NullSimProfiler,
    SimProfiler,
    Telemetry,
)
from repro.telemetry.metrics import MetricsRegistry


def _profiled_sim(wallclock=False):
    telemetry = Telemetry(trace=False, profile=True,
                          profile_wallclock=wallclock)
    return Simulator(telemetry=telemetry), telemetry


class TestTagOwnership:
    def test_process_events_carry_the_process_name(self):
        sim, telemetry = _profiled_sim()

        def proc(sim):
            yield sim.timeout(1.0)
            yield sim.timeout(1.0)

        sim.spawn(proc(sim), name="worker")
        sim.run()
        prof = telemetry.profiler
        # One bootstrap event plus the two timeouts.
        assert prof.event_counts.get("worker") == 3
        assert prof.total_events == sum(prof.event_counts.values())

    def test_bound_method_events_use_the_owner_profile_tag(self):
        sim, telemetry = _profiled_sim()

        class Widget:
            profile_tag = "gadget"
            hits = 0

            def poke(self):
                self.hits += 1

        widget = Widget()
        sim.schedule(0.5, widget.poke)
        sim.run()
        assert widget.hits == 1
        assert telemetry.profiler.event_counts == {"gadget": 1}

    def test_untagged_callables_inherit_the_dispatch_context(self):
        sim, telemetry = _profiled_sim()
        fired = []

        def proc(sim):
            # A bare closure scheduled from inside the process inherits
            # the process's tag.
            sim.schedule(0.1, lambda: fired.append(sim.now))
            yield sim.timeout(1.0)

        sim.spawn(proc(sim), name="origin")
        sim.run()
        assert fired == [0.1]
        # Bootstrap + inherited closure + timeout, all owned by origin.
        assert telemetry.profiler.event_counts == {"origin": 3}

    def test_setup_tag_covers_pre_run_scheduling(self):
        sim, telemetry = _profiled_sim()
        sim.schedule(1.0, lambda: None)
        sim.run()
        assert telemetry.profiler.event_counts == {"setup": 1}


class TestClassification:
    def test_builtin_heuristics(self):
        prof = SimProfiler()
        assert prof.classify("pcie") == "pcie"
        assert prof.classify("client.nic.sq1.tx") == "nic.queues"
        assert prof.classify("client.nic.rdma") == "nic.rdma"
        assert prof.classify("client.nic.shaper") == "nic.shaper"
        assert prof.classify("client.nic.port.wire") == "wire"
        assert prof.classify("fld0.kdriver") == "host"
        assert prof.classify("ethqp1.rx") == "host"
        assert prof.classify("echo.unit0") == "accel"
        assert prof.classify("run") == "app"
        assert prof.classify("mystery-component") == "other"

    def test_declared_prefix_beats_builtin_heuristics(self):
        prof = SimProfiler()
        assert prof.classify("fld0.tx") == "other"
        prof.declare("fld0.tx", "fld.tx")
        assert prof.classify("fld0.tx") == "fld.tx"
        assert prof.classify("fld0.tx.ring") == "fld.tx"

    def test_longest_declared_prefix_wins_and_redeclare_overwrites(self):
        prof = SimProfiler()
        prof.declare("dev", "coarse")
        prof.declare("dev.sub", "fine")
        assert prof.classify("dev.sub.x") == "fine"
        assert prof.classify("dev.other") == "coarse"
        prof.declare("dev", "recoarsed")
        assert prof.classify("dev.other") == "recoarsed"

    def test_classification_is_total_so_stage_sums_match(self):
        prof = SimProfiler()
        prof.event_counts = {"pcie": 3, "???": 2, "run": 1}
        prof.total_events = 6
        assert sum(prof.stage_counts().values()) == prof.total_events


class TestDepthTimeline:
    def test_samples_are_taken_at_the_configured_interval(self):
        prof = SimProfiler(depth_sample_every=2, max_depth_samples=100)
        for i in range(1, 9):
            if i % prof.depth_every == 0:
                prof.record_depth(i, depth=i * 10)
        assert prof.depth_samples == [(2, 20), (4, 40), (6, 60), (8, 80)]

    def test_compaction_halves_samples_and_doubles_interval(self):
        prof = SimProfiler(depth_sample_every=1, max_depth_samples=4)
        for i in range(1, 5):
            prof.record_depth(i, depth=i)
        # The fourth append hits the cap: every other sample dropped,
        # interval doubled.
        assert prof.depth_samples == [(1, 1), (3, 3)]
        assert prof.depth_every == 2


class TestRegistryFlush:
    def test_flush_is_delta_based(self):
        registry = MetricsRegistry()
        prof = SimProfiler(registry=registry)
        prof.event_counts = {"pcie": 5, "run": 1}
        prof.total_events = 6
        prof.flush()
        prof.flush()  # no double counting
        assert registry.counter("profile.events.total").value == 6
        assert registry.counter("profile.stage.pcie.events").value == 5
        assert registry.counter("profile.stage.app.events").value == 1
        prof.event_counts["pcie"] += 2
        prof.total_events += 2
        prof.flush()
        assert registry.counter("profile.events.total").value == 8
        assert registry.counter("profile.stage.pcie.events").value == 7

    def test_wall_times_never_reach_the_registry(self):
        registry = MetricsRegistry()
        prof = SimProfiler(wallclock=True, registry=registry)
        prof.wall_times[("pcie", "f")] = [1.0, 3]
        prof.event_counts = {"pcie": 3}
        prof.total_events = 3
        prof.flush()
        assert all("wall" not in name for name in registry.names())


class TestCollapsedStacks:
    def test_event_count_stacks_without_wallclock(self):
        prof = SimProfiler()
        prof.event_counts = {"pcie": 4, "run": 2}
        # Sorted by tag for deterministic output.
        assert prof.collapsed_stacks() == ["pcie;pcie 4", "app;run 2"]

    def test_wallclock_stacks_carry_callsites_in_microseconds(self):
        prof = SimProfiler(wallclock=True)
        prof.wall_times[("pcie", "PcieFabric._deliver")] = [0.002, 7]
        assert prof.collapsed_stacks() == [
            "pcie;pcie;PcieFabric._deliver 2000"]


class TestNullProfiler:
    def test_api_parity_with_the_real_profiler(self):
        real = {n for n in dir(SimProfiler) if not n.startswith("_")}
        null = {n for n in dir(NullSimProfiler) if not n.startswith("_")}
        missing = real - null - {"declare"}
        assert "declare" in null
        assert not missing, f"NullSimProfiler lacks {sorted(missing)}"

    def test_null_profiler_keeps_the_engine_unprofiled(self):
        sim = Simulator()
        assert sim.profiler is NULL_PROFILER
        assert sim._prof is None
        # The profiled run loop is not reachable without a profiler.
        sim.schedule(1.0, lambda: None)
        sim.run()
        assert NULL_PROFILER.total_events == 0
        assert NULL_PROFILER.event_counts == {}


class TestProfiledRuns:
    """Integration: full experiments under ``run_profile``."""

    @pytest.fixture(scope="class")
    def echo_summary(self):
        from repro.telemetry.runner import run_profile
        random.seed(1234)
        return run_profile("echo", count=200)

    def test_stage_sums_equal_engine_event_total(self, echo_summary):
        profile = echo_summary["profile"]
        stage_sum = sum(s["events"] for s in profile["stages"].values())
        assert stage_sum == profile["total_events"]
        assert stage_sum == echo_summary["engine_events"]

    def test_events_per_packet_reported(self, echo_summary):
        profile = echo_summary["profile"]
        assert profile["delivered"] == echo_summary["delivered"] > 0
        assert profile["events_per_packet"] == pytest.approx(
            profile["total_events"] / profile["delivered"])
        # The paper-pipeline stages all appear on the echo path.
        for stage in ("pcie", "nic.queues", "wire", "fld.tx", "fld.rx",
                      "accel", "host", "app"):
            assert stage in profile["stages"], stage

    def test_nothing_lands_in_other(self, echo_summary):
        # Every component on the echo datapath is tagged/classified;
        # an "other" bucket means a new component escaped the rules.
        assert "other" not in echo_summary["profile"]["stages"]

    def test_rendered_report_contains_the_tables(self, echo_summary):
        rendered = echo_summary["rendered"]
        assert "per-stage event counts" in rendered
        assert "events/packet" in rendered

    def test_audit_is_clean(self, echo_summary):
        assert echo_summary["violations"] == []

    def test_profiled_runs_are_deterministic(self):
        from repro.telemetry.runner import run_profile
        random.seed(77)
        first = run_profile("echo", count=120)
        random.seed(77)
        second = run_profile("echo", count=120)
        assert first["profile"] == second["profile"]
        assert first["result"] == second["result"]

    def test_profiler_off_is_bit_identical_to_untraced(self):
        # The fingerprint pin for the NULL fast path: a profiled run,
        # a metrics-only run and a bare run must produce the exact same
        # experiment result (== on floats, not approx).
        from repro.experiments.echo import echo_throughput

        def fingerprint(telemetry):
            random.seed(4321)
            return echo_throughput("flde-remote", 256, count=150,
                                   telemetry=telemetry)

        bare = fingerprint(None)
        profiled = fingerprint(Telemetry(trace=False, profile=True))
        wallclock = fingerprint(Telemetry(trace=False, profile=True,
                                          profile_wallclock=True))
        assert bare == profiled == wallclock

    def test_wallclock_mode_attributes_callsites(self):
        from repro.telemetry.runner import run_profile
        random.seed(5)
        summary = run_profile("echo", count=100, wallclock=True)
        wall = summary["profile"]["wall"]
        assert wall["seconds"] > 0
        assert wall["top"], "no callsites attributed"
        top = wall["top"][0]
        assert set(top) == {"tag", "callsite", "seconds", "events",
                            "stage"}
        for line in summary["profile"]["collapsed"]:
            stack, weight = line.rsplit(" ", 1)
            assert stack.count(";") == 2
            assert int(weight) > 0

    def test_unknown_experiment_is_rejected(self):
        from repro.telemetry.runner import run_profile
        with pytest.raises(ValueError, match="unknown profile"):
            run_profile("nope")

    def test_artifacts_are_written(self, tmp_path):
        from repro.telemetry.runner import run_profile
        random.seed(9)
        out_json = tmp_path / "profile.json"
        out_folded = tmp_path / "profile.folded"
        summary = run_profile("echo", count=100,
                              json_output=str(out_json),
                              collapsed_output=str(out_folded))
        document = json.loads(out_json.read_text())
        assert document["profile"]["total_events"] == \
            summary["profile"]["total_events"]
        folded = out_folded.read_text().strip().splitlines()
        assert folded  # event-count stacks, one line per tag
        assert len(folded) == len(summary["profile"]["tags"])
        for line in folded:
            stack, weight = line.rsplit(" ", 1)
            assert stack.count(";") == 1
            assert int(weight) > 0
