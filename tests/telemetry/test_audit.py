"""The invariant auditor: every rule triggers on a synthetic breach and
stays quiet on a clean subject."""

from types import SimpleNamespace

import pytest

from repro.telemetry import SpanRecorder
from repro.telemetry.audit import (
    AuditError,
    assert_clean,
    audit_all,
    audit_fabric,
    audit_fld,
    audit_nic,
    audit_spans,
)


def _rules(violations):
    return sorted({v.rule for v in violations})


class TestSpanAudit:
    def test_clean_stream(self):
        spans = SpanRecorder()
        ctx = spans.start_trace("pkt", 0.0)
        handle = spans.enter(ctx, "wire", 0.0)
        spans.exit(handle, 1.0)
        spans.end_trace(ctx, 1.0)
        assert audit_spans(spans) == []

    def test_orphaned_span(self):
        spans = SpanRecorder()
        ctx = spans.start_trace("pkt", 0.0)
        spans.enter(ctx, "nic.rx", 0.5)  # never exited
        spans.end_trace(ctx, 1.0)
        assert _rules(audit_spans(spans)) == ["orphaned-span"]

    def test_unfinished_trace_only_when_expected_complete(self):
        spans = SpanRecorder()
        spans.start_trace("pkt", 0.0)  # root never ends
        assert _rules(audit_spans(spans)) == ["unfinished-trace"]
        assert audit_spans(spans, expect_complete=False) == []

    def test_unclaimed_stash(self):
        spans = SpanRecorder()
        ctx = spans.start_trace("pkt", 0.0)
        spans.stash(("wqe", "nic", 3, 0), ctx)
        spans.end_trace(ctx, 1.0)
        assert _rules(audit_spans(spans)) == ["unclaimed-stash"]


def _fake_fld(credit_leak=0, outstanding=0, chunk_leak=0, slot_leak=0):
    """The attribute shape audit_fld reads, with injectable breaches."""
    credits = SimpleNamespace(
        available=lambda q: 16 - credit_leak,
        capacity=lambda q: 16,
    )
    state = SimpleNamespace(outstanding=[object()] * outstanding)
    buffers = SimpleNamespace(num_chunks=64, free_chunks=64 - chunk_leak)
    descriptors = SimpleNamespace(capacity=32, free_slots=32 - slot_leak)
    tx = SimpleNamespace(credits=credits, _queues={0: state},
                         buffers=buffers, descriptors=descriptors)
    return SimpleNamespace(name="fld", tx=tx)


class TestFldAudit:
    def test_clean_fld(self):
        assert audit_fld(_fake_fld()) == []

    def test_credit_leak(self):
        assert _rules(audit_fld(_fake_fld(credit_leak=2))) == \
            ["credit-leak"]

    def test_buffer_leak(self):
        assert _rules(audit_fld(_fake_fld(chunk_leak=3))) == \
            ["buffer-leak"]

    def test_descriptor_leaks(self):
        violations = audit_fld(_fake_fld(outstanding=1, slot_leak=2))
        assert _rules(violations) == ["descriptor-leak"]
        assert len(violations) == 2  # ring slots and pool slots


def _fake_nic(residue=0, sent=1000, retx=0):
    rdma = SimpleNamespace(segments_sent=sent, retransmits=retx)
    return SimpleNamespace(name="nic", rdma=rdma,
                           _rx_inbox={0: [object()] * residue})


class TestNicAudit:
    def test_clean_nic(self):
        assert audit_nic(_fake_nic()) == []

    def test_queue_residue(self):
        assert _rules(audit_nic(_fake_nic(residue=2))) == \
            ["queue-residue"]

    def test_retransmit_storm(self):
        assert _rules(audit_nic(_fake_nic(sent=100, retx=50))) == \
            ["retransmit-storm"]

    def test_few_retransmits_below_floor_are_fine(self):
        # A handful of recoveries is normal operation, not a storm.
        assert audit_nic(_fake_nic(sent=100, retx=10)) == []


def _fake_fabric(pending=0, requester="nic"):
    reads = {tag: {"event": object(), "requester": requester,
                   "chunks": [], "remaining": None}
             for tag in range(pending)}
    return SimpleNamespace(_pending_reads=reads)


class TestFabricAudit:
    def test_clean_fabric(self):
        assert audit_fabric(_fake_fabric()) == []

    def test_reads_in_flight_at_quiesce(self):
        violations = audit_fabric(_fake_fabric(pending=3))
        assert _rules(violations) == ["read-in-flight"]
        assert "3 read(s)" in violations[0].detail
        assert "3 from nic" in violations[0].detail

    def test_audit_all_includes_fabrics(self):
        violations = audit_all(fabrics=[_fake_fabric(pending=1)])
        assert _rules(violations) == ["read-in-flight"]

    def test_real_fabric_quiesces_clean(self):
        # A drained simulated fabric has no reads outstanding.
        from repro.pcie import PcieFabric
        from repro.sim import Simulator
        sim = Simulator()
        fabric = PcieFabric(sim)
        assert audit_fabric(fabric) == []


class TestAssertClean:
    def test_raises_with_violation_list(self):
        spans = SpanRecorder()
        spans.start_trace("pkt", 0.0)
        violations = audit_all(spans=spans)
        with pytest.raises(AuditError) as excinfo:
            assert_clean(violations)
        assert excinfo.value.violations == violations
        assert "unfinished-trace" in str(excinfo.value)

    def test_passes_on_empty(self):
        assert_clean([])

    def test_audit_all_combines_subjects(self):
        spans = SpanRecorder()
        spans.start_trace("pkt", 0.0)
        violations = audit_all(
            spans=spans,
            flds=[_fake_fld(credit_leak=1)],
            nics=[_fake_nic(residue=1)],
        )
        assert _rules(violations) == \
            ["credit-leak", "queue-residue", "unfinished-trace"]
