"""Unit tests for the metrics registry: counters, gauges, histograms,
snapshots and probes."""

import json

import pytest

from repro.telemetry import (
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    NULL_TELEMETRY,
    Snapshot,
    Telemetry,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter("x")
        assert counter.value == 0
        counter.inc()
        counter.inc(41)
        assert counter.value == 42


class TestGauge:
    def test_tracks_peak(self):
        gauge = Gauge("depth")
        gauge.set(3)
        gauge.set(10)
        gauge.set(2)
        assert gauge.value == 2
        assert gauge.peak == 10


class TestHistogram:
    def test_log2_bucketing(self):
        histogram = Histogram("lat")
        for v in (1.0, 1.5, 2.0, 3.0, 100.0):
            histogram.observe(v)
        assert histogram.count == 5
        # 1.0 -> exponent 1 via frexp(0.5, 1); 1.5, 2.0 -> exponent 1;
        # 3.0 -> exponent 2; 100.0 -> exponent 7.
        assert sum(histogram.buckets.values()) == 5
        assert histogram.min == 1.0
        assert histogram.max == 100.0
        assert histogram.mean == pytest.approx(107.5 / 5)

    def test_underflow_bucket(self):
        histogram = Histogram()
        histogram.observe(0.0)
        histogram.observe(-5.0)
        histogram.observe(2.0)
        assert histogram.underflow == 2
        assert sum(histogram.buckets.values()) == 1

    def test_percentile_within_factor_of_two(self):
        histogram = Histogram()
        for _ in range(100):
            histogram.observe(10.0)
        p50 = histogram.percentile(50)
        assert 8.0 <= p50 <= 16.0  # the bucket holding 10.0

    def test_percentile_empty_raises(self):
        with pytest.raises(MetricsError):
            Histogram().percentile(50)

    def test_merge_adds_buckets_without_copying_samples(self):
        a, b = Histogram("a"), Histogram("b")
        for v in (1.0, 4.0, 9.0):
            a.observe(v)
        for v in (9.0, 70.0):
            b.observe(v)
        merged = a.merge(b)
        assert merged is a
        assert a.count == 5
        assert a.total == pytest.approx(93.0)
        assert a.min == 1.0
        assert a.max == 70.0

    def test_merge_rejects_non_histogram(self):
        with pytest.raises(MetricsError):
            Histogram().merge(Counter("nope"))

    def test_merge_with_empty_is_identity_either_way(self):
        populated = Histogram("p")
        for v in (1.0, 4.0, -2.0):
            populated.observe(v)
        before = populated.to_dict()
        populated.merge(Histogram("empty"))
        assert populated.to_dict() == before
        # Empty absorbing populated reproduces it exactly.
        empty = Histogram("e")
        empty.merge(populated)
        assert empty.count == populated.count
        assert empty.total == pytest.approx(populated.total)
        assert empty.buckets == populated.buckets
        assert empty.min == populated.min
        assert empty.max == populated.max
        assert empty.underflow == populated.underflow

    def test_dict_round_trip(self):
        histogram = Histogram("rtt")
        for v in (0.5, 3.0, 3.5, 200.0, -1.0):
            histogram.observe(v)
        data = json.loads(json.dumps(histogram.to_dict()))
        back = Histogram.from_dict(data)
        assert back.count == histogram.count
        assert back.total == pytest.approx(histogram.total)
        assert back.buckets == histogram.buckets
        assert back.underflow == histogram.underflow


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("a.b") is registry.counter("a.b")

    def test_type_collision_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(MetricsError):
            registry.gauge("x")

    def test_attach_adopts_external_histogram(self):
        registry = MetricsRegistry()
        histogram = Histogram()
        histogram.observe(5.0)
        registry.attach("echo.latency", histogram)
        assert registry.histogram("echo.latency") is histogram
        assert "echo.latency" in registry

    def test_attach_collision_raises(self):
        registry = MetricsRegistry()
        registry.counter("taken")
        with pytest.raises(MetricsError):
            registry.attach("taken", Histogram())

    def test_probes_sampled_lazily(self):
        registry = MetricsRegistry()
        state = {"calls": 0}

        def probe():
            state["calls"] += 1
            return {"depth": 7}

        registry.register_probe("queue", probe)
        assert state["calls"] == 0
        assert registry.sample_probes() == {"queue.depth": 7}
        assert state["calls"] == 1

    def test_snapshot_diff_reports_only_deltas(self):
        registry = MetricsRegistry()
        counter = registry.counter("tlps")
        registry.counter("idle")
        before = registry.snapshot()
        counter.inc(5)
        after = registry.snapshot()
        assert after.diff(before) == {"tlps": 5}

    def test_snapshot_without_probes(self):
        registry = MetricsRegistry()
        registry.register_probe("p", lambda: {"x": 1})
        snap = registry.snapshot(include_probes=False)
        assert "p.x" not in snap

    def test_to_dict_groups_by_kind(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(3)
        registry.histogram("h").observe(1.0)
        registry.register_probe("p", lambda: {"k": 9})
        data = registry.to_dict()
        assert data["counters"] == {"c": 2}
        assert data["gauges"]["g"] == {"value": 3, "peak": 3}
        assert data["histograms"]["h"]["count"] == 1
        assert data["probes"] == {"p.k": 9}
        json.loads(registry.to_json())  # serializable


class TestMergeFrom:
    """Registry aggregation: the sweep/benchmark sharding contract."""

    def test_merge_empty_export_is_a_no_op(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.histogram("h").observe(2.0)
        before = registry.to_dict()
        registry.merge_from({})
        registry.merge_from({"counters": {}, "gauges": {},
                             "histograms": {}})
        assert registry.to_dict() == before

    def test_merge_into_empty_reproduces_the_export(self):
        source = MetricsRegistry()
        source.counter("tlps").inc(7)
        source.gauge("depth").set(4)
        source.histogram("lat").observe(1.5)
        export = json.loads(json.dumps(source.to_dict()))
        target = MetricsRegistry()
        target.merge_from(export)
        assert target.to_dict() == source.to_dict()

    def test_merge_disjoint_instruments_unions(self):
        a = MetricsRegistry()
        a.counter("only.a").inc(1)
        a.histogram("hist.a").observe(2.0)
        b = MetricsRegistry()
        b.counter("only.b").inc(2)
        b.gauge("gauge.b").set(5)
        merged = MetricsRegistry()
        merged.merge_from(a.to_dict())
        merged.merge_from(b.to_dict())
        assert merged.counter("only.a").value == 1
        assert merged.counter("only.b").value == 2
        assert merged.gauge("gauge.b").value == 5
        assert merged.histogram("hist.a").count == 1

    def test_merge_overlapping_counters_add_and_gauges_keep_peak(self):
        shard = MetricsRegistry()
        shard.counter("c").inc(10)
        gauge = shard.gauge("g")
        gauge.set(9)
        gauge.set(2)
        merged = MetricsRegistry()
        merged.merge_from(shard.to_dict())
        merged.merge_from(shard.to_dict())
        assert merged.counter("c").value == 20
        assert merged.gauge("g").value == 2
        assert merged.gauge("g").peak == 9

    def test_merged_profiler_shards_sum_exactly(self):
        # Two profiled shards of a simulation must merge to the totals a
        # single combined run would report: profile.* instruments are
        # plain counters, so merge_from adds them loss-free.
        from repro.telemetry.profile import SimProfiler

        def shard(events):
            registry = MetricsRegistry()
            profiler = SimProfiler(registry=registry)
            for tag, count in events.items():
                profiler.event_counts[tag] = count
                profiler.total_events += count
            profiler.flush()
            return registry

        first = shard({"pcie": 5, "run": 2})
        second = shard({"pcie": 3, "client.nic.rq1": 4})
        merged = MetricsRegistry()
        merged.merge_from(first.to_dict())
        merged.merge_from(second.to_dict())
        combined = shard({"pcie": 8, "run": 2, "client.nic.rq1": 4})
        assert merged.to_dict() == combined.to_dict()


class TestNullSink:
    def test_null_telemetry_hands_out_shared_noops(self):
        assert NULL_TELEMETRY.enabled is False
        assert NULL_TELEMETRY.counter("any") is NULL_COUNTER
        assert NULL_TELEMETRY.gauge("any") is NULL_GAUGE
        assert NULL_TELEMETRY.histogram("any") is NULL_HISTOGRAM
        NULL_COUNTER.inc(5)
        assert NULL_COUNTER.value == 0
        NULL_GAUGE.set(3)
        assert NULL_GAUGE.peak == 0
        NULL_HISTOGRAM.observe(1.0)
        assert len(NULL_HISTOGRAM) == 0

    def test_null_snapshot_is_empty(self):
        snap = NULL_TELEMETRY.snapshot()
        assert isinstance(snap, Snapshot)
        assert snap.as_dict() == {}

    def test_enabled_telemetry_records(self):
        telemetry = Telemetry(trace=False)
        assert telemetry.enabled is True
        telemetry.counter("c").inc()
        assert telemetry.metrics.counter("c").value == 1
        assert telemetry.tracer.enabled is False  # trace=False


class TestPercentileKnownDistributions:
    """Histogram.percentile against distributions with known answers.

    log2 buckets bound the error to a factor of two inside a bucket;
    interpolation plus min/max clamping makes the common cases exact.
    """

    def test_constant_distribution_is_exact(self):
        histogram = Histogram()
        for _ in range(1000):
            histogram.observe(3.7)
        for pct in (0, 1, 50, 99, 100):
            assert histogram.percentile(pct) == pytest.approx(3.7)

    def test_single_sample_is_exact(self):
        histogram = Histogram()
        histogram.observe(42.0)
        assert histogram.percentile(0) == 42.0
        assert histogram.percentile(50) == 42.0
        assert histogram.percentile(100) == 42.0

    def test_uniform_distribution_within_bucket_resolution(self):
        # U(0, 1000]: true p-th percentile is 10*p.
        histogram = Histogram()
        for i in range(1, 1001):
            histogram.observe(float(i))
        for pct, truth in ((10, 100.0), (50, 500.0), (90, 900.0),
                           (99, 990.0)):
            estimate = histogram.percentile(pct)
            assert truth / 2 <= estimate <= truth * 2, \
                f"p{pct}: {estimate} vs {truth}"

    def test_bimodal_distribution_separates_modes(self):
        # 90% fast (1 us), 10% slow (1 ms): p50 must sit near the fast
        # mode and p99 near the slow one — three orders apart.
        histogram = Histogram()
        for _ in range(900):
            histogram.observe(1e-6)
        for _ in range(100):
            histogram.observe(1e-3)
        assert histogram.percentile(50) <= 2e-6
        assert histogram.percentile(99) >= 0.5e-3

    def test_extremes_clamp_to_observed_range(self):
        histogram = Histogram()
        for v in (2.0, 3.0, 5.0, 9.0):
            histogram.observe(v)
        assert histogram.percentile(0) == 2.0
        assert histogram.percentile(100) == 9.0

    def test_monotone_in_pct(self):
        histogram = Histogram()
        for i in range(1, 513):
            histogram.observe(float(i))
        estimates = [histogram.percentile(p) for p in range(0, 101, 5)]
        assert estimates == sorted(estimates)

    def test_underflow_dominated_percentiles(self):
        histogram = Histogram()
        histogram.observe(-1.0)
        histogram.observe(-2.0)
        histogram.observe(8.0)
        # Two thirds of the mass is non-positive.
        assert histogram.percentile(50) <= 0.0
        assert histogram.percentile(100) == 8.0
