"""The shared fused fast-path gate: one predicate, enumerated.

PR 9 grew three private copies of the "may we take the fused path?"
check (NIC tx stage, host EthQueuePair rx, FLD rx engine); PR 10 merges
them into :func:`repro.sim.fastpath.fused_dispatch_ok`.  These tests
enumerate every gate condition so a future edit to the predicate is a
conscious decision, and pin that the three call sites actually use it.
"""

import itertools

import pytest

from repro.sim import Simulator, fused_dispatch_ok


class _Flag:
    def __init__(self, enabled):
        self.enabled = enabled


class _Telemetry:
    def __init__(self, tracer, spans):
        self.tracer = _Flag(tracer)
        self.spans = _Flag(spans)


class _Sim:
    def __init__(self, tracer, spans):
        self.telemetry = _Telemetry(tracer, spans)


class _Fabric:
    def __init__(self, cut_through):
        self._cut_through = cut_through


@pytest.mark.parametrize(
    "tracer,spans,cut_through",
    list(itertools.product([False, True], repeat=3)))
def test_gate_truth_table(tracer, spans, cut_through):
    """The gate opens iff tracer off AND spans off AND cut-through on."""
    sim = _Sim(tracer, spans)
    fabric = _Fabric(cut_through)
    expected = (not tracer) and (not spans) and cut_through
    assert fused_dispatch_ok(sim, fabric) is expected


def test_gate_closed_without_cut_through_attribute():
    """Fabric doubles without _cut_through never take the fast path."""
    class Bare:
        pass

    assert fused_dispatch_ok(_Sim(False, False), Bare()) is False


def test_gate_open_on_default_simulator():
    """A default Simulator (telemetry off) plus a cut-through fabric
    opens the gate — the configuration every fig7b-style run uses."""
    sim = Simulator()
    assert fused_dispatch_ok(sim, _Fabric(True)) is True
    assert fused_dispatch_ok(sim, _Fabric(False)) is False


def test_call_sites_share_the_predicate():
    """All three fused callers import the shared gate (no private
    copies of the tracer/spans/cut-through triple left behind)."""
    import inspect

    from repro.core import fld
    from repro.host import driver
    from repro.nic import device

    for module in (device, driver, fld):
        source = inspect.getsource(module)
        assert "fused_dispatch_ok" in source
