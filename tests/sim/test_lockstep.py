"""Lockstep oracle: two-tier scheduler vs a reference pure-heap engine.

The engine v2 split scheduling into a FIFO ready-deque (zero-delay and
in-order future appends) plus the classic binary heap, merged at
dispatch time by ``(time, seq)``.  The claim is that this is *exactly*
the single-heap dispatch order — not approximately, not "up to ties".

This suite machine-checks the claim: hypothesis generates random
workload trees (mixed zero-delay and timed pushes, same-timestamp
bursts, pushes-during-dispatch, absolute-time ``schedule_at`` entries,
``run(until=...)`` horizons) and executes each one through the real
:class:`repro.sim.engine.Simulator` and through ``PureHeapScheduler``, a
deliberately naive reimplementation of the pre-v2 engine that pushes
*every* entry through ``heapq``.  The dispatch logs — ``(time, node)``
per fired entry — and the final clocks must be identical.
"""

import heapq

from hypothesis import given, settings, strategies as st

from repro.sim.engine import Simulator

#: Small delay alphabet with duplicates so same-timestamp bursts are
#: common, not a corner case.
DELAYS = [0.0, 0.0, 0.0, 1e-9, 1e-9, 2e-9, 5e-9, 1e-8]


class PureHeapScheduler:
    """The pre-v2 engine, minimized: one heap, strict (time, seq) pops."""

    def __init__(self):
        self.now = 0.0
        self._queue = []
        self._seq = 0

    def schedule(self, delay, action):
        heapq.heappush(self._queue, (self.now + delay, self._seq, action))
        self._seq += 1

    def schedule_at(self, time, action):
        assert time >= self.now
        heapq.heappush(self._queue, (time, self._seq, action))
        self._seq += 1

    def run(self, until=None):
        queue = self._queue
        while queue:
            time, _seq, action = queue[0]
            if until is not None and time > until:
                self.now = until
                return self.now
            heapq.heappop(queue)
            self.now = time
            action()
        if until is not None:
            self.now = max(self.now, until)
        return self.now


# A workload is a tree of nodes.  Each node carries (delay_index,
# via_timeout, children); firing a node logs its identity and schedules
# its children — pushes-during-dispatch by construction.  ``delay_index``
# < 0 means schedule_at(now + |delay|) instead of a relative push.
workload_nodes = st.deferred(
    lambda: st.tuples(
        st.integers(min_value=-len(DELAYS), max_value=len(DELAYS) - 1),
        st.booleans(),
        st.lists(workload_nodes, max_size=3),
    )
)

workloads = st.lists(workload_nodes, min_size=1, max_size=6)


def execute(sim, workload, log, label_path=()):
    """Schedule ``workload``'s roots; children recurse on fire."""

    def fire(node, path):
        delay_index, via_timeout, children = node
        log.append((round(sim.now, 15), path))
        for i, child in enumerate(children):
            schedule_node(child, path + (i,))

    def schedule_node(node, path):
        delay_index, via_timeout, children = node
        if delay_index < 0:
            sim.schedule_at(sim.now + DELAYS[-delay_index - 1],
                            lambda n=node, p=path: fire(n, p))
        elif via_timeout and hasattr(sim, "timeout"):
            # Event-mediated push: timeout + callback, the generator idiom.
            event = sim.timeout(DELAYS[delay_index])
            event.add_callback(lambda _e, n=node, p=path: fire(n, p))
        else:
            sim.schedule(DELAYS[delay_index],
                         lambda n=node, p=path: fire(n, p))

    for i, node in enumerate(workload):
        schedule_node(node, label_path + (i,))


@settings(max_examples=60, deadline=None)
@given(workload=workloads, horizon=st.sampled_from([None, 0.0, 1.5e-9,
                                                    4e-9, 1e-7]))
def test_lockstep_dispatch_order(workload, horizon):
    real, real_log = Simulator(), []
    ref, ref_log = PureHeapScheduler(), []
    execute(real, workload, real_log)
    execute(ref, workload, ref_log)
    real_end = real.run(until=horizon)
    ref_end = ref.run(until=horizon)
    assert real_log == ref_log
    assert real_end == ref_end
    assert real.now == ref.now


@settings(max_examples=40, deadline=None)
@given(workload=workloads)
def test_lockstep_resumed_runs(workload):
    """Multiple run(until=...) segments agree too — the ready tier must
    drain correctly at every horizon, not just at quiesce."""
    real, real_log = Simulator(), []
    ref, ref_log = PureHeapScheduler(), []
    execute(real, workload, real_log)
    execute(ref, workload, ref_log)
    for until in (1e-9, 2e-9, 6e-9, None):
        real.run(until=until)
        ref.run(until=until)
        assert real_log == ref_log
    assert real.now == ref.now


# -- mixed-kind oracle: continuations, cancellations, processes ----------
#
# The engine's three event kinds (plain entries, cancellable flat
# continuations, generator processes) must interleave exactly as the
# single-heap model dispatches the same pushes.  Each node is
# (kind, delay_index, aux_index, children):
#
#   kind 0  schedule(d)
#   kind 1  schedule_at(now + d)
#   kind 2  timeout(d) + add_callback   (the generator-free Event idiom)
#   kind 3  defer(d) / defer_at(now + d)        (aux parity picks which)
#   kind 4  defer(d) raced against a cancel scheduled at aux delay
#   kind 5  a spawned generator process: two timed resumes, children
#           scheduled from the first (pushes-during-resume)
#
# The reference mirrors each kind's *scheduler entry* sequence: spawn is
# one zero-delay entry, every yield one timed entry, a cancelled
# continuation still occupies (and no-op-dispatches at) its original
# (time, seq) slot.

mixed_nodes = st.deferred(
    lambda: st.tuples(
        st.integers(min_value=0, max_value=5),
        st.integers(min_value=0, max_value=len(DELAYS) - 1),
        st.integers(min_value=0, max_value=len(DELAYS) - 1),
        st.lists(mixed_nodes, max_size=3),
    )
)

mixed_workloads = st.lists(mixed_nodes, min_size=1, max_size=6)


def execute_mixed(sim, workload, log, is_real):
    """Schedule a mixed-kind workload on the real engine or the
    pure-heap reference; ``log`` records every actual fire."""

    def fire(node, path):
        log.append((round(sim.now, 15), path))
        for i, child in enumerate(node[3]):
            schedule_node(child, path + (i,))

    def schedule_node(node, path):
        kind, delay_index, aux_index, _children = node
        delay = DELAYS[delay_index]
        if kind == 0:
            sim.schedule(delay, lambda n=node, p=path: fire(n, p))
        elif kind == 1:
            sim.schedule_at(sim.now + delay,
                            lambda n=node, p=path: fire(n, p))
        elif kind == 2:
            if is_real:
                event = sim.timeout(delay)
                event.add_callback(lambda _e, n=node, p=path: fire(n, p))
            else:
                sim.schedule(delay, lambda n=node, p=path: fire(n, p))
        elif kind == 3:
            if is_real:
                if aux_index % 2:
                    sim.defer_at(sim.now + delay,
                                 lambda n=node, p=path: fire(n, p))
                else:
                    sim.defer(delay, lambda n=node, p=path: fire(n, p))
            else:
                if aux_index % 2:
                    sim.schedule_at(sim.now + delay,
                                    lambda n=node, p=path: fire(n, p))
                else:
                    sim.schedule(delay,
                                 lambda n=node, p=path: fire(n, p))
        elif kind == 4:
            cancel_delay = DELAYS[aux_index]
            if is_real:
                cont = sim.defer(delay,
                                 lambda n=node, p=path: fire(n, p))
                sim.schedule(cancel_delay, cont.cancel)
            else:
                state = [False, False]  # fired, cancelled

                def entry(n=node, p=path, s=state):
                    if not s[0] and not s[1]:
                        s[0] = True
                        fire(n, p)

                def cancel(s=state):
                    if not s[0]:
                        s[1] = True

                sim.schedule(delay, entry)
                sim.schedule(cancel_delay, cancel)
        else:  # kind 5: generator process with two timed resumes
            second_delay = DELAYS[aux_index]
            if is_real:
                def proc(n=node, p=path):
                    yield sim.timeout(delay)
                    fire(n, p + ("r1",))
                    yield sim.timeout(second_delay)
                    log.append((round(sim.now, 15), p + ("r2",)))

                sim.spawn(proc())
            else:
                def resume2(p=path):
                    log.append((round(sim.now, 15), p + ("r2",)))

                def resume1(n=node, p=path):
                    fire(n, p + ("r1",))
                    sim.schedule(second_delay, resume2)

                def step(n=node):
                    sim.schedule(DELAYS[n[1]], resume1)

                sim.schedule(0.0, step)

    for i, node in enumerate(workload):
        schedule_node(node, (i,))


@settings(max_examples=60, deadline=None)
@given(workload=mixed_workloads, horizon=st.sampled_from([None, 0.0,
                                                          1.5e-9, 4e-9,
                                                          1e-7]))
def test_lockstep_mixed_kinds(workload, horizon):
    """Continuations, cancellations and processes dispatch in exactly
    the single-heap order."""
    real, real_log = Simulator(), []
    ref, ref_log = PureHeapScheduler(), []
    execute_mixed(real, workload, real_log, is_real=True)
    execute_mixed(ref, workload, ref_log, is_real=False)
    real_end = real.run(until=horizon)
    ref_end = ref.run(until=horizon)
    assert real_log == ref_log
    assert real_end == ref_end
    assert real.now == ref.now


@settings(max_examples=40, deadline=None)
@given(workload=mixed_workloads)
def test_lockstep_mixed_kinds_resumed_runs(workload):
    """Horizon-segmented runs agree for the mixed-kind alphabet too —
    suspended processes and pending cancellations must survive a
    run(until=...) boundary without reordering."""
    real, real_log = Simulator(), []
    ref, ref_log = PureHeapScheduler(), []
    execute_mixed(real, workload, real_log, is_real=True)
    execute_mixed(ref, workload, ref_log, is_real=False)
    for until in (1e-9, 2e-9, 6e-9, None):
        real.run(until=until)
        ref.run(until=until)
        assert real_log == ref_log
    assert real.now == ref.now


def test_cancelled_continuation_still_occupies_its_slot():
    """Cancelling a deferred continuation must not unschedule it: the
    entry dispatches (as a no-op) at its original (time, seq), so
    everything behind it keeps its position."""
    sim = Simulator()
    log = []
    cont = sim.defer(2e-9, lambda: log.append("cancelled"))
    sim.schedule(2e-9, lambda: log.append("behind"))
    cont.cancel()
    sim.run()
    assert log == ["behind"]
    assert cont.cancelled and not cont.fired


def test_ready_tier_used_for_zero_delay():
    """Sanity: zero-delay pushes actually land on the O(1) tier."""
    sim = Simulator()
    sim.schedule(0.0, lambda: None)
    sim.schedule(0.0, lambda: None)
    sim.schedule(1e-9, lambda: None)
    assert len(sim._ready) == 2
    assert len(sim._queue) == 1
    sim.run()
    assert not sim._ready and not sim._queue


def test_out_of_order_future_append_falls_back_to_heap():
    """schedule_at keeps the deque sorted: a time before the deque tail
    must take the heap path, and dispatch order stays (time, seq)."""
    sim = Simulator()
    log = []
    sim.schedule_at(5e-9, lambda: log.append("late"))
    sim.schedule_at(2e-9, lambda: log.append("early"))  # tail is later
    assert len(sim._ready) == 1 and len(sim._queue) == 1
    sim.run()
    assert log == ["early", "late"]
