"""Unit tests for statistics helpers."""

import pytest

from repro.sim import Counter, LatencyCollector, ThroughputMeter, percentile


class TestPercentile:
    def test_median_of_odd_list(self):
        assert percentile([3, 1, 2], 50) == 2

    def test_interpolation(self):
        assert percentile([0, 10], 50) == pytest.approx(5.0)
        assert percentile([0, 10], 25) == pytest.approx(2.5)

    def test_extremes(self):
        data = [5, 1, 9, 3]
        assert percentile(data, 0) == 1
        assert percentile(data, 100) == 9

    def test_single_sample(self):
        assert percentile([7.0], 99.9) == 7.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_pct_raises(self):
        with pytest.raises(ValueError):
            percentile([1], 101)

    def test_matches_numpy(self):
        numpy = pytest.importorskip("numpy")
        data = [1.0, 5.0, 2.5, 9.9, 4.4, 0.1, 7.7]
        for pct in (1, 25, 50, 75, 99, 99.9):
            assert percentile(data, pct) == pytest.approx(
                float(numpy.percentile(data, pct))
            )


class TestLatencyCollector:
    def test_summary_fields(self):
        collector = LatencyCollector()
        for value in range(1, 101):
            collector.add(float(value))
        summary = collector.summary()
        assert summary["mean"] == pytest.approx(50.5)
        assert summary["median"] == pytest.approx(50.5)
        assert summary["p99"] == pytest.approx(99.01)
        assert len(collector) == 100

    def test_empty_mean_raises(self):
        with pytest.raises(ValueError):
            _ = LatencyCollector().mean


class TestThroughputMeter:
    def test_gbps_calculation(self):
        meter = ThroughputMeter()
        meter.start(0.0)
        meter.record(1.0, 125_000_000)  # 1 Gbit in 1 s
        assert meter.gbps() == pytest.approx(1.0)

    def test_mpps_calculation(self):
        meter = ThroughputMeter()
        meter.start(0.0)
        for i in range(1000):
            meter.record((i + 1) * 1e-6, 64)
        assert meter.mpps() == pytest.approx(1.0)

    def test_zero_duration_returns_zero(self):
        meter = ThroughputMeter()
        meter.start(5.0)
        assert meter.gbps() == 0.0
        assert meter.mpps() == 0.0

    def test_wire_overhead_counted(self):
        meter = ThroughputMeter()
        meter.start(0.0)
        meter.record(1.0, 1000)
        assert meter.gbps(wire_overhead_per_packet=24) == pytest.approx(
            (1000 + 24) * 8 / 1e9
        )


class TestCounter:
    def test_inc_and_read(self):
        counter = Counter()
        counter.inc("drops")
        counter.inc("drops", 2)
        assert counter["drops"] == 3
        assert counter["missing"] == 0
        assert counter.as_dict() == {"drops": 3}
