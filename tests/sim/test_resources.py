"""Unit tests for links and token buckets."""

import pytest

from repro.sim import DuplexLink, Link, Simulator, Store, TokenBucket


class TestLink:
    def test_serialization_delay(self):
        sim = Simulator()
        link = Link(sim, rate_bps=1000.0)  # 1000 bits/s
        arrivals = []
        link.connect(lambda msg: arrivals.append((sim.now, msg)))
        link.send("m", bits=500)
        sim.run()
        assert arrivals == [(0.5, "m")]

    def test_propagation_latency_added(self):
        sim = Simulator()
        link = Link(sim, rate_bps=1000.0, latency=0.25)
        arrivals = []
        link.connect(lambda msg: arrivals.append(sim.now))
        link.send("m", bits=500)
        sim.run()
        assert arrivals == [0.75]

    def test_back_to_back_messages_queue(self):
        sim = Simulator()
        link = Link(sim, rate_bps=1000.0)
        arrivals = []
        link.connect(lambda msg: arrivals.append((sim.now, msg)))
        link.send("a", bits=1000)
        link.send("b", bits=1000)
        sim.run()
        assert arrivals == [(1.0, "a"), (2.0, "b")]

    def test_infinite_rate_link(self):
        sim = Simulator()
        link = Link(sim, rate_bps=None, latency=0.1)
        arrivals = []
        link.connect(lambda msg: arrivals.append(sim.now))
        link.send("a", bits=1e9)
        sim.run()
        assert arrivals == [0.1]

    def test_delivery_preserves_order(self):
        sim = Simulator()
        link = Link(sim, rate_bps=1e6)
        arrivals = []
        link.connect(arrivals.append)
        for i in range(10):
            link.send(i, bits=100)
        sim.run()
        assert arrivals == list(range(10))

    def test_queue_delay_reports_backlog(self):
        sim = Simulator()
        link = Link(sim, rate_bps=1000.0)
        link.connect(lambda m: None)
        link.send("a", bits=2000)
        assert link.queue_delay() == pytest.approx(2.0)

    def test_send_without_sink_raises(self):
        sim = Simulator()
        link = Link(sim, rate_bps=1000.0)
        with pytest.raises(RuntimeError):
            link.send("a", bits=1)

    def test_stats_accumulate(self):
        sim = Simulator()
        link = Link(sim, rate_bps=1e9)
        link.connect(lambda m: None)
        link.send("a", bits=100)
        link.send("b", bits=200)
        assert link.stats_bits == 300
        assert link.stats_messages == 2

    def test_idle_gap_resets_busy_window(self):
        sim = Simulator()
        link = Link(sim, rate_bps=1000.0)
        arrivals = []
        link.connect(lambda m: arrivals.append(sim.now))
        link.send("a", bits=1000)

        def later(sim):
            yield sim.timeout(10.0)
            link.send("b", bits=1000)

        sim.spawn(later(sim))
        sim.run()
        assert arrivals == [1.0, 11.0]


class TestDuplexLink:
    def test_independent_directions(self):
        sim = Simulator()
        duplex = DuplexLink(sim, rate_bps=1000.0)
        tx_arrivals, rx_arrivals = [], []
        duplex.tx.connect(lambda m: tx_arrivals.append(sim.now))
        duplex.rx.connect(lambda m: rx_arrivals.append(sim.now))
        duplex.tx.send("a", bits=1000)
        duplex.rx.send("b", bits=1000)
        sim.run()
        # Both finish at t=1: no contention between directions.
        assert tx_arrivals == [1.0]
        assert rx_arrivals == [1.0]


class TestTokenBucket:
    def test_initial_burst_available(self):
        sim = Simulator()
        bucket = TokenBucket(sim, rate_bps=1000.0, burst_bits=500.0)
        assert bucket.try_consume(500.0)
        assert not bucket.try_consume(1.0)

    def test_refill_over_time(self):
        sim = Simulator()
        bucket = TokenBucket(sim, rate_bps=1000.0, burst_bits=500.0)
        bucket.try_consume(500.0)

        def check(sim):
            yield sim.timeout(0.25)
            assert bucket.tokens == pytest.approx(250.0)
            assert bucket.try_consume(250.0)

        sim.spawn(check(sim))
        sim.run()

    def test_delay_for_reports_wait(self):
        sim = Simulator()
        bucket = TokenBucket(sim, rate_bps=1000.0, burst_bits=100.0)
        bucket.try_consume(100.0)
        assert bucket.delay_for(500.0) == pytest.approx(0.5)

    def test_tokens_capped_at_burst(self):
        sim = Simulator()
        bucket = TokenBucket(sim, rate_bps=1e9, burst_bits=100.0)

        def check(sim):
            yield sim.timeout(10.0)
            assert bucket.tokens == pytest.approx(100.0)

        sim.spawn(check(sim))
        sim.run()

    def test_invalid_rate_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            TokenBucket(sim, rate_bps=0.0, burst_bits=1.0)
