"""Additional engine semantics: process composition, trampolining."""

import pytest

from repro.sim import SimulationError, Simulator, Store


class TestProcessComposition:
    def test_process_finished_flag(self):
        sim = Simulator()

        def worker(sim):
            yield sim.timeout(1.0)

        process = sim.spawn(worker(sim))
        assert not process.finished
        sim.run()
        assert process.finished

    def test_all_of_with_processes(self):
        sim = Simulator()
        results = []

        def worker(sim, delay, value):
            yield sim.timeout(delay)
            return value

        def parent(sim):
            a = sim.spawn(worker(sim, 1.0, "a"))
            b = sim.spawn(worker(sim, 2.0, "b"))
            values = yield sim.all_of([a.done, b.done])
            results.append((sim.now, values))

        sim.spawn(parent(sim))
        sim.run()
        assert results == [(2.0, ["a", "b"])]

    def test_deep_ready_chain_does_not_overflow(self):
        """The trampoline: thousands of already-fired yields in one
        process must not recurse."""
        sim = Simulator()
        store = Store(sim)
        for i in range(20_000):
            store.try_put(i)
        total = []

        def consumer(sim):
            for _ in range(20_000):
                value = yield store.get()
                total.append(value)

        sim.spawn(consumer(sim))
        sim.run()
        assert len(total) == 20_000

    def test_exception_in_process_propagates(self):
        sim = Simulator()

        def bad(sim):
            yield sim.timeout(1.0)
            raise RuntimeError("boom")

        sim.spawn(bad(sim))
        with pytest.raises(RuntimeError, match="boom"):
            sim.run()

    def test_run_is_resumable_after_until(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(3.0, lambda: fired.append(3))
        sim.run(until=2.0)
        assert fired == [1]
        assert sim.now == 2.0
        sim.run()
        assert fired == [1, 3]
        assert sim.now == 3.0

    def test_event_loop_livelock_guard(self):
        sim = Simulator()

        def spinner(sim):
            while True:
                yield sim.timeout(0)

        sim.spawn(spinner(sim))
        with pytest.raises(SimulationError, match="livelock"):
            sim.run(max_events=10_000)
