"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import Event, Resource, SimulationError, Simulator, Store


def test_timeout_advances_clock():
    sim = Simulator()
    times = []

    def proc(sim):
        yield sim.timeout(1.5)
        times.append(sim.now)
        yield sim.timeout(0.5)
        times.append(sim.now)

    sim.spawn(proc(sim))
    sim.run()
    assert times == [1.5, 2.0]


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(3.0, lambda: order.append("c"))
    sim.schedule(1.0, lambda: order.append("a"))
    sim.schedule(2.0, lambda: order.append("b"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_same_time_events_fifo():
    sim = Simulator()
    order = []
    for tag in "abc":
        sim.schedule(1.0, lambda t=tag: order.append(t))
    sim.run()
    assert order == ["a", "b", "c"]


def test_run_until_stops_early():
    sim = Simulator()
    fired = []
    sim.schedule(5.0, lambda: fired.append(True))
    end = sim.run(until=2.0)
    assert end == 2.0
    assert not fired
    sim.run()
    assert fired


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_process_return_value_via_done_event():
    sim = Simulator()
    results = []

    def worker(sim):
        yield sim.timeout(1.0)
        return 42

    def parent(sim):
        value = yield sim.spawn(worker(sim))
        results.append((sim.now, value))

    sim.spawn(parent(sim))
    sim.run()
    assert results == [(1.0, 42)]


def test_event_fires_once_only():
    sim = Simulator()
    event = sim.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)


def test_event_value_before_fire_raises():
    sim = Simulator()
    event = sim.event()
    with pytest.raises(SimulationError):
        _ = event.value


def test_all_of_waits_for_every_event():
    sim = Simulator()
    seen = []

    def proc(sim):
        done = yield sim.all_of([sim.timeout(1, "a"), sim.timeout(3, "b")])
        seen.append((sim.now, done))

    sim.spawn(proc(sim))
    sim.run()
    assert seen == [(3.0, ["a", "b"])]


def test_all_of_empty_fires_immediately():
    sim = Simulator()
    event = sim.all_of([])
    assert event.fired and event.value == []


def test_yielding_non_event_raises():
    sim = Simulator()

    def bad(sim):
        yield 17

    sim.spawn(bad(sim))
    with pytest.raises(SimulationError):
        sim.run()


class TestStore:
    def test_put_then_get(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def consumer(sim):
            item = yield store.get()
            got.append(item)

        store.try_put("x")
        sim.spawn(consumer(sim))
        sim.run()
        assert got == ["x"]

    def test_get_blocks_until_put(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def consumer(sim):
            item = yield store.get()
            got.append((sim.now, item))

        def producer(sim):
            yield sim.timeout(2.0)
            store.try_put("y")

        sim.spawn(consumer(sim))
        sim.spawn(producer(sim))
        sim.run()
        assert got == [(2.0, "y")]

    def test_fifo_ordering(self):
        sim = Simulator()
        store = Store(sim)
        for i in range(5):
            store.try_put(i)
        got = []

        def consumer(sim):
            for _ in range(5):
                item = yield store.get()
                got.append(item)

        sim.spawn(consumer(sim))
        sim.run()
        assert got == [0, 1, 2, 3, 4]

    def test_capacity_drop_on_try_put(self):
        sim = Simulator()
        store = Store(sim, capacity=2)
        assert store.try_put(1)
        assert store.try_put(2)
        assert not store.try_put(3)
        assert store.stats_dropped == 1
        assert len(store) == 2

    def test_blocking_put_waits_for_space(self):
        sim = Simulator()
        store = Store(sim, capacity=1)
        events = []

        def producer(sim):
            yield store.put("a")
            events.append(("a", sim.now))
            yield store.put("b")
            events.append(("b", sim.now))

        def consumer(sim):
            yield sim.timeout(5.0)
            item = yield store.get()
            events.append((item, sim.now, "got"))

        sim.spawn(producer(sim))
        sim.spawn(consumer(sim))
        sim.run()
        assert ("a", 0.0) in events
        assert ("b", 5.0) in events

    def test_try_get_empty_returns_none(self):
        sim = Simulator()
        store = Store(sim)
        assert store.try_get() is None

    def test_max_depth_tracking(self):
        sim = Simulator()
        store = Store(sim)
        for i in range(7):
            store.try_put(i)
        assert store.stats_max_depth == 7


class TestResource:
    def test_exclusive_access(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)
        timeline = []

        def user(sim, name, hold):
            yield resource.acquire()
            timeline.append((name, "start", sim.now))
            yield sim.timeout(hold)
            resource.release()
            timeline.append((name, "end", sim.now))

        sim.spawn(user(sim, "a", 2.0))
        sim.spawn(user(sim, "b", 1.0))
        sim.run()
        assert ("a", "end", 2.0) in timeline
        assert ("b", "start", 2.0) in timeline

    def test_release_without_acquire_raises(self):
        sim = Simulator()
        resource = Resource(sim)
        with pytest.raises(SimulationError):
            resource.release()

    def test_capacity_allows_parallelism(self):
        sim = Simulator()
        resource = Resource(sim, capacity=2)
        ends = []

        def user(sim):
            yield resource.acquire()
            yield sim.timeout(1.0)
            resource.release()
            ends.append(sim.now)

        for _ in range(4):
            sim.spawn(user(sim))
        sim.run()
        assert ends == [1.0, 1.0, 2.0, 2.0]
