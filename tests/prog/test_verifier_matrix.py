"""Verifier rejection matrix: every bad program dies at load time.

Each invalid program is submitted through the firmware command channel
(``CreateProg``) and must come back ``VERIFY_FAILED`` with the typed
``E_*`` sub-code in the response syndrome — and, crucially, with the
``ObjectTable`` untouched: a rejected load leaves no handle, no
refcount, no partial state.  Dangling map references are a separate
failure class (``BAD_HANDLE``): they are reported before verification
even runs.
"""

import pytest

from repro.nic import CmdStatus
from repro.nic.cmd import CreateProg, CreateProgMap, DestroyObject
from repro.prog.isa import (
    ACT_PASS,
    Alu,
    Jmp,
    JmpIf,
    LdMeta,
    LdPkt,
    LdStack,
    MAX_INSNS,
    MapLookup,
    Mov,
    Program,
    Ret,
    StStack,
)
from repro.prog.verifier import (
    E_BUDGET,
    E_JUMP,
    E_MAP,
    E_OPCODE,
    E_PKT_BOUNDS,
    E_REGISTER,
    E_STACK_BOUNDS,
    E_TERMINATION,
    E_WIDTH,
    ProgVerifyError,
    verify,
)
from repro.sim import Simulator
from repro.testbed import make_local_node

#: (case name, program, expected syndrome).  One row per E_* code.
MATRIX = [
    ("empty",
     Program("empty", ()),
     E_BUDGET),
    ("over-budget",
     Program("big",
             tuple(Mov(0, imm=0) for _ in range(MAX_INSNS))
             + (Ret(ACT_PASS),)),
     E_BUDGET),
    ("no-terminal-ret",
     Program("noret", (Mov(0, imm=1),)),
     E_TERMINATION),
    ("backward-jump",
     Program("loop", (Mov(0, imm=0), Jmp(-1), Ret(ACT_PASS))),
     E_JUMP),
    ("jump-past-end",
     Program("overjump", (Jmp(5), Ret(ACT_PASS))),
     E_JUMP),
    ("bad-register",
     Program("badreg", (Mov(8, imm=1), Ret(ACT_PASS))),
     E_REGISTER),
    ("both-src-and-imm",
     Program("ambig", (Mov(0, src=1, imm=2), Ret(ACT_PASS))),
     E_REGISTER),
    ("oob-packet-read",
     Program("oob", (LdPkt(0, 40, 4), Ret(ACT_PASS)),
             min_packet_len=42),
     E_PKT_BOUNDS),
    ("packet-read-without-contract",
     Program("nolen", (LdPkt(0, 0, 1), Ret(ACT_PASS))),  # min_len=0
     E_PKT_BOUNDS),
    ("oob-stack",
     Program("stk", (StStack(64, 0, 8), Ret(ACT_PASS))),
     E_STACK_BOUNDS),
    ("bad-width",
     Program("w3", (LdStack(0, 0, 3), Ret(ACT_PASS))),
     E_WIDTH),
    ("map-index-out-of-range",
     Program("nomap", (Mov(1, imm=0), MapLookup(0, 0, key=1),
                       Ret(ACT_PASS))),
     E_MAP),
    ("bad-action",
     Program("boom", (Ret("explode"),)),
     E_OPCODE),
    ("bad-alu-op",
     Program("alu", (Alu("pow", 0, imm=2), Ret(ACT_PASS))),
     E_OPCODE),
    ("bad-cond",
     Program("cond", (JmpIf("almost", 0, off=0, imm=1), Ret(ACT_PASS))),
     E_OPCODE),
    ("bad-meta-field",
     Program("meta", (LdMeta(0, "color"), Ret(ACT_PASS))),
     E_OPCODE),
    ("not-an-instruction",
     Program("junk", ("nop", Ret(ACT_PASS))),
     E_OPCODE),
]


@pytest.fixture()
def channel():
    sim = Simulator()
    node = make_local_node(sim)
    return node.driver.channel


class TestVerifierUnit:
    """The verifier rejects directly, with the right sub-code."""

    @pytest.mark.parametrize("name,program,code",
                             MATRIX, ids=[m[0] for m in MATRIX])
    def test_rejection_code(self, name, program, code):
        with pytest.raises(ProgVerifyError) as err:
            verify(program, num_maps=0)
        assert err.value.code == code

    def test_not_a_program_rejected(self):
        with pytest.raises(ProgVerifyError) as err:
            verify("not a program", num_maps=0)
        assert err.value.code == E_OPCODE

    def test_valid_program_returns_insn_count(self):
        assert verify(Program("ok", (Mov(0, imm=1), Ret(ACT_PASS))),
                      num_maps=0) == 2


class TestRejectionThroughFirmware:
    """The command channel surfaces typed statuses and stays clean."""

    @pytest.mark.parametrize("name,program,code",
                             MATRIX, ids=[m[0] for m in MATRIX])
    def test_verify_failed_with_syndrome_and_no_state(self, channel,
                                                      name, program,
                                                      code):
        table = channel.unit.table
        before = table.rows()
        result = channel.execute(CreateProg(program=program, maps=[]))
        assert result.status == CmdStatus.VERIFY_FAILED
        assert result.syndrome == code
        assert table.rows() == before

    def test_dangling_map_is_bad_handle_not_verify(self, channel):
        """An unregistered map object fails handle resolution before
        the verifier ever runs — even with an invalid program."""
        table = channel.unit.table
        before = table.rows()
        good = Program("ok", (Ret(ACT_PASS),))
        result = channel.execute(CreateProg(program=good,
                                            maps=[object()]))
        assert result.status == CmdStatus.BAD_HANDLE
        assert table.rows() == before
        bad = Program("noret", (Mov(0, imm=1),))
        result = channel.execute(CreateProg(program=bad, maps=[object()]))
        assert result.status == CmdStatus.BAD_HANDLE
        assert table.rows() == before

    def test_destroyed_map_is_dangling(self, channel):
        prog_map = channel.execute(CreateProgMap(capacity=8)).obj
        handle = channel.unit.table.handle_of(prog_map)
        assert channel.execute(DestroyObject(handle=handle)).ok
        before = channel.unit.table.rows()
        result = channel.execute(CreateProg(
            program=Program("ok", (Ret(ACT_PASS),)), maps=[prog_map]))
        assert result.status == CmdStatus.BAD_HANDLE
        assert channel.unit.table.rows() == before

    def test_map_index_checked_against_bound_maps(self, channel):
        """A program touching map 1 loads with two maps, not with one."""
        prog = Program("two", (Mov(1, imm=0), MapLookup(0, 1, key=1),
                               Ret(ACT_PASS)))
        m0 = channel.execute(CreateProgMap()).obj
        result = channel.execute(CreateProg(program=prog, maps=[m0]))
        assert result.status == CmdStatus.VERIFY_FAILED
        assert result.syndrome == E_MAP
        m1 = channel.execute(CreateProgMap()).obj
        assert channel.execute(CreateProg(program=prog,
                                          maps=[m0, m1])).ok
