"""Program/map object lifecycle through the firmware command channel.

Pins the ownership story: maps and programs are firmware objects with
handles and refcounts; attaching pins the program, a program pins its
maps, destroy order is enforced (IN_USE), attach/detach state errors
are typed (BAD_STATE/BAD_PARAM), and the datapath hooks return to the
NULL fast path (``prog_hook is None``) when the last program detaches.
"""

import pytest

from repro.experiments.prog import prog_spec
from repro.nic import CmdStatus
from repro.nic.cmd import (
    AttachProg,
    CreateProg,
    CreateProgMap,
    DelMapEntry,
    DetachProg,
    QueryMapEntry,
    QueryObject,
    SetMapEntry,
)
from repro.prog.isa import ACT_PASS, Program, Ret
from repro.prog.programs import firewall, passthrough
from repro.sim import Simulator
from repro.topology import build as build_topology


@pytest.fixture()
def testbed():
    sim = Simulator()
    testbed = build_topology(sim, prog_spec("firewall"))
    yield testbed
    testbed.teardown()


@pytest.fixture()
def env(testbed):
    runtime = testbed.fld("server.fld")
    fn = testbed.accel("tenant0")
    return {
        "runtime": runtime,
        "fld": runtime.fld,
        "channel": runtime.ctrl.channel,
        "ctrl": runtime.ctrl,
        "binding": runtime.rx_binding_of(fn.rq),
        "txq": fn.txq,
    }


class TestObjectLifecycle:
    def test_create_query_destroy_round_trip(self, env):
        ctrl = env["ctrl"]
        prog_map = ctrl.create_prog_map(capacity=16)
        ctrl.map_set(prog_map, 7001, 1)
        prog = ctrl.create_prog(firewall(), [prog_map])
        info = ctrl.query(prog)
        assert info["kind"] == "prog"
        assert info["name"] == "firewall"
        assert info["insns"] == 4
        assert info["maps"] == 1
        assert info["counters"]["runs"] == 0
        map_info = ctrl.query(prog_map)
        assert map_info["kind"] == "map"
        assert map_info["capacity"] == 16
        assert map_info["entries"] == 1
        ctrl.destroy(prog)
        ctrl.destroy(prog_map)

    def test_program_pins_its_maps(self, env):
        channel, ctrl = env["channel"], env["ctrl"]
        prog_map = ctrl.create_prog_map()
        prog = ctrl.create_prog(firewall(), [prog_map])
        # The map is referenced by the program: destroy must refuse.
        handle = ctrl.handle_of(prog_map)
        from repro.nic.cmd import DestroyObject
        assert channel.execute(
            DestroyObject(handle=handle)).status == CmdStatus.IN_USE
        ctrl.destroy(prog)
        ctrl.destroy(prog_map)      # unpinned now

    def test_attach_pins_the_program(self, env):
        channel, ctrl = env["channel"], env["ctrl"]
        prog = ctrl.create_prog(passthrough(), [])
        ctrl.attach_prog(env["fld"], prog, "rx", env["binding"])
        from repro.nic.cmd import DestroyObject
        assert channel.execute(DestroyObject(
            handle=ctrl.handle_of(prog))).status == CmdStatus.IN_USE
        ctrl.detach_prog(env["fld"], "rx", env["binding"])
        ctrl.destroy(prog)

    def test_bad_capacity_is_bad_param(self, env):
        assert env["channel"].execute(
            CreateProgMap(capacity=0)).status == CmdStatus.BAD_PARAM


class TestAttachDetach:
    def test_rx_hook_set_and_restored(self, env):
        fld, ctrl = env["fld"], env["ctrl"]
        assert fld.rx.prog_hook is None          # NULL fast path
        prog = ctrl.create_prog(passthrough(), [])
        ctrl.attach_prog(fld, prog, "rx", env["binding"])
        assert fld.rx.prog_hook is not None
        ctrl.detach_prog(fld, "rx", env["binding"])
        assert fld.rx.prog_hook is None          # restored on detach
        ctrl.destroy(prog)

    def test_tx_hook_set_and_restored(self, env):
        fld, ctrl = env["fld"], env["ctrl"]
        assert fld.tx.prog_hook is None
        prog = ctrl.create_prog(passthrough(), [])
        ctrl.attach_prog(fld, prog, "tx", env["txq"])
        assert fld.tx.prog_hook is not None
        ctrl.detach_prog(fld, "tx", env["txq"])
        assert fld.tx.prog_hook is None
        ctrl.destroy(prog)

    def test_double_attach_is_bad_state(self, env):
        channel, ctrl = env["channel"], env["ctrl"]
        prog = ctrl.create_prog(passthrough(), [])
        ctrl.attach_prog(env["fld"], prog, "rx", env["binding"])
        result = channel.execute(AttachProg(
            prog=prog, fld=env["fld"], direction="rx",
            target=env["binding"]))
        assert result.status == CmdStatus.BAD_STATE
        ctrl.detach_prog(env["fld"], "rx", env["binding"])
        ctrl.destroy(prog)

    def test_detach_nothing_is_bad_state(self, env):
        assert env["channel"].execute(DetachProg(
            fld=env["fld"], direction="rx",
            target=env["binding"])).status == CmdStatus.BAD_STATE

    def test_attach_to_unknown_target_is_bad_param(self, env):
        channel, ctrl = env["channel"], env["ctrl"]
        prog = ctrl.create_prog(passthrough(), [])
        for direction, target in (("rx", 77), ("tx", 77)):
            assert channel.execute(AttachProg(
                prog=prog, fld=env["fld"], direction=direction,
                target=target)).status == CmdStatus.BAD_PARAM
        assert channel.execute(AttachProg(
            prog=prog, fld=env["fld"], direction="sideways",
            target=0)).status == CmdStatus.BAD_PARAM
        assert channel.execute(AttachProg(
            prog=prog, fld=None, direction="rx",
            target=0)).status == CmdStatus.BAD_PARAM
        ctrl.destroy(prog)

    def test_attach_requires_a_prog_handle(self, env):
        assert env["channel"].execute(AttachProg(
            prog=object(), fld=env["fld"], direction="rx",
            target=env["binding"])).status == CmdStatus.BAD_HANDLE


class TestMapCommands:
    def test_set_get_del_round_trip(self, env):
        ctrl = env["ctrl"]
        prog_map = ctrl.create_prog_map(capacity=8)
        ctrl.map_set(prog_map, 5, 50)
        assert ctrl.map_get(prog_map, 5) == 50
        ctrl.map_set(prog_map, 5, 51)        # replace in place
        assert ctrl.map_get(prog_map, 5) == 51
        ctrl.map_del(prog_map, 5)
        assert ctrl.map_get(prog_map, 5) is None
        ctrl.destroy(prog_map)

    def test_query_map_entry_presence(self, env):
        channel, ctrl = env["channel"], env["ctrl"]
        prog_map = ctrl.create_prog_map()
        ctrl.map_set(prog_map, 1, 10)
        info = channel.execute(QueryMapEntry(map=prog_map, key=1)).info
        assert info == {"present": True, "value": 10}
        info = channel.execute(QueryMapEntry(map=prog_map, key=2)).info
        assert info == {"present": False, "value": None}
        ctrl.destroy(prog_map)

    def test_full_map_is_no_resources(self, env):
        channel, ctrl = env["channel"], env["ctrl"]
        prog_map = ctrl.create_prog_map(capacity=2)
        ctrl.map_set(prog_map, 1, 1)
        ctrl.map_set(prog_map, 2, 2)
        result = channel.execute(SetMapEntry(map=prog_map, key=3,
                                             value=3))
        assert result.status == CmdStatus.NO_RESOURCES
        # Replacing an existing key still works at capacity.
        ctrl.map_set(prog_map, 1, 100)
        assert ctrl.map_get(prog_map, 1) == 100
        ctrl.destroy(prog_map)

    def test_delete_missing_key_is_bad_param(self, env):
        channel, ctrl = env["channel"], env["ctrl"]
        prog_map = ctrl.create_prog_map()
        assert channel.execute(DelMapEntry(
            map=prog_map, key=9)).status == CmdStatus.BAD_PARAM
        ctrl.destroy(prog_map)

    def test_map_commands_require_map_handles(self, env):
        channel = env["channel"]
        for cmd in (SetMapEntry(map=object(), key=1, value=1),
                    DelMapEntry(map=object(), key=1),
                    QueryMapEntry(map=object(), key=1)):
            assert channel.execute(cmd).status == CmdStatus.BAD_HANDLE


class TestWireFormat:
    def test_program_rides_the_ext_sideband(self):
        """Programs (frozen dataclass trees) cross the mailbox as live
        references on the ext side band, like CQ/RQ handles do."""
        from repro.nic.cmd import pack_command, unpack_command
        prog = Program("p", (Ret(ACT_PASS),))
        cmd = CreateProg(program=prog, maps=[])
        raw, ext = pack_command(cmd, seq=3)
        assert prog in ext
        decoded, seq = unpack_command(raw, ext)
        assert seq == 3
        assert decoded.program is prog
