"""End-to-end datapath runs of the four example programs.

Each scenario drives real traffic through the full stack — load
generator, NIC, FLD rx engine, program interpreter, accelerator, and
back — and checks the verdict arithmetic, the delivery counts and a
clean invariant audit (drops end their packet's trace; nothing leaks).
"""

import pytest

from repro.experiments.prog import (
    BLOCKED_PORTS,
    DDOS_BURST,
    SCENARIOS,
    echo_fingerprint,
    prog_spec,
    run_scenario,
)
from repro.experiments.setups import CLIENT_MAC
from repro.host import LoadGenerator
from repro.net import Flow
from repro.prog.programs import firewall
from repro.sim import Simulator
from repro.telemetry import Telemetry
from repro.telemetry.audit import audit_all
from repro.topology import build as build_topology

COUNT = 120     # multiple of 4 flows: exact per-flow arithmetic below


class TestScenarios:
    def test_firewall_drops_exactly_the_blocklist(self):
        row = run_scenario("firewall", count=COUNT)
        verdicts = row["verdicts"]
        per_flow = COUNT // 4
        assert row["sent"] == COUNT
        assert verdicts["runs"] == COUNT
        assert verdicts["drop"] == per_flow * len(BLOCKED_PORTS)
        assert verdicts["pass"] == COUNT - verdicts["drop"]
        assert row["received"] == verdicts["pass"]
        assert row["violations"] == 0

    def test_nat_modifies_every_packet(self):
        row = run_scenario("nat", count=COUNT)
        verdicts = row["verdicts"]
        assert verdicts["modify"] == COUNT
        assert verdicts["pass"] == verdicts["drop"] == 0
        assert row["received"] == COUNT      # translation still echoes
        assert row["violations"] == 0

    def test_lb_redirects_and_splits_backends(self):
        row = run_scenario("lb", count=COUNT)
        verdicts = row["verdicts"]
        assert verdicts["redirect"] == COUNT
        assert verdicts["redirect_drops"] == 0
        assert row["received"] == COUNT
        by_fn = {fn["fn"]: fn["accel_packets"] for fn in row["per_fn"]}
        assert by_fn["lb"] == 0              # the LB accel never runs
        assert by_fn["b0"] == by_fn["b1"] == COUNT // 2
        assert row["violations"] == 0

    def test_ddos_passes_one_burst_per_flow(self):
        row = run_scenario("ddos", count=COUNT)
        verdicts = row["verdicts"]
        flows = 2
        assert verdicts["pass"] == flows * DDOS_BURST
        assert verdicts["drop"] == COUNT - flows * DDOS_BURST
        assert row["received"] == verdicts["pass"]
        assert row["violations"] == 0

    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_every_scenario_audits_clean(self, scenario):
        row = run_scenario(scenario, count=40)
        assert row["violations"] == 0
        assert row["prog_latency"]["spans"] == row["verdicts"]["runs"]
        assert row["prog_latency"]["mean_us"] > 0


class TestTxDirection:
    def test_tx_attached_firewall_drops_echo_replies(self):
        """An egress program on the echo function's tx queue: replies
        (dst port 7000 after the echo swap) are dropped at submit time,
        before any FLD buffer is taken, and the audit stays clean."""
        telemetry = Telemetry(trace=False, spans=True, span_sample_rate=1)
        sim = Simulator(telemetry=telemetry)
        testbed = build_topology(sim, prog_spec("firewall"))
        runtime = testbed.fld("server.fld")
        ctrl = runtime.ctrl
        fn = testbed.accel("tenant0")
        blocklist = ctrl.create_prog_map()
        ctrl.map_set(blocklist, 7000, 1)
        prog = ctrl.create_prog(firewall(), [blocklist])
        ctrl.attach_prog(runtime.fld, prog, "tx", fn.txq)

        flows = [Flow(CLIENT_MAC, "02:00:00:00:00:99",
                      "10.0.0.1", "10.0.0.2", 7000, 7001)]
        loadgen = LoadGenerator(sim, testbed.host_qp("client"), flows[0])

        def run(sim):
            yield from loadgen.run_open_loop([256] * 50,
                                             rate_pps=1_000_000)
            yield from loadgen.drain()

        sim.spawn(run(sim))
        sim.run(until=2.0)

        assert loadgen.stats_sent == 50
        assert loadgen.stats_received == 0
        assert prog.counters()["drop"] == 50
        assert fn.accel.stats_processed == 50   # accel ran; tx dropped

        ctrl.detach_prog(runtime.fld, "tx", fn.txq)
        ctrl.destroy(prog)
        ctrl.destroy(blocklist)
        violations = testbed.quiesce() + audit_all(spans=telemetry.spans)
        assert violations == []
        testbed.teardown()


class TestNullFastPath:
    def test_touched_and_untouched_runs_are_bit_identical(self):
        """Create/attach/detach/destroy a passthrough program before
        traffic: every count and float in the fingerprint must equal
        the run that never touched the prog subsystem."""
        untouched = echo_fingerprint(count=100)
        touched = echo_fingerprint(count=100, touch_prog=True)
        assert touched == untouched
        assert untouched["received"] == 100
        assert untouched["violations"] == 0
