"""Interpreter semantics: registers, ALU, packet/stack memory, maps.

These run the engine's ``_execute`` directly on a stub FLD (the method
only reads program state), with programs loaded through
``load_program`` so everything tested here passed the verifier first —
the same contract the datapath relies on.
"""

from types import SimpleNamespace

from repro.prog.engine import ProgEngine, load_program
from repro.prog.isa import (
    ACT_DROP,
    ACT_PASS,
    ACT_REDIRECT,
    Alu,
    Jmp,
    JmpIf,
    LdMeta,
    LdPkt,
    LdStack,
    M64,
    MapDelete,
    MapLookup,
    MapUpdate,
    Mov,
    Program,
    Ret,
    StPkt,
    StStack,
)
from repro.prog.maps import ProgMap
from repro.telemetry.spans import NULL_SPANS


def make_engine() -> ProgEngine:
    fld = SimpleNamespace(
        sim=SimpleNamespace(telemetry=SimpleNamespace(spans=NULL_SPANS)))
    return ProgEngine(fld)


def run(insns, data=bytes(range(64)), maps=(), min_len=0, now=0.0,
        queue=0):
    loaded = load_program(Program("t", tuple(insns),
                                  min_packet_len=min_len), maps)
    result = make_engine()._execute(loaded, data, now, queue)
    return result, loaded


class TestAlu:
    def ret_r0(self, *insns):
        """Run insns, store R0 to the stack, read it back out."""
        result, _ = run(list(insns)
                        + [StStack(0, 0, 8), Ret(ACT_PASS)])
        assert result[0] == ACT_PASS
        return result

    def r0_after(self, *insns):
        prog = list(insns) + [StPkt(0, 0, 8), Ret(ACT_PASS)]
        (action, _vport, out, _n, modified), _ = run(
            prog, data=bytes(16), min_len=16)
        assert action == ACT_PASS and modified
        return int.from_bytes(out[0:8], "big")

    def test_add_sub_mul(self):
        assert self.r0_after(Mov(0, imm=7), Alu("add", 0, imm=5)) == 12
        assert self.r0_after(Mov(0, imm=7), Alu("sub", 0, imm=5)) == 2
        assert self.r0_after(Mov(0, imm=7), Alu("mul", 0, imm=5)) == 35

    def test_div_mod_and_zero_guards(self):
        assert self.r0_after(Mov(0, imm=37), Alu("div", 0, imm=5)) == 7
        assert self.r0_after(Mov(0, imm=37), Alu("mod", 0, imm=5)) == 2
        assert self.r0_after(Mov(0, imm=37), Alu("div", 0, imm=0)) == 0
        assert self.r0_after(Mov(0, imm=37), Alu("mod", 0, imm=0)) == 0

    def test_bitwise_and_shifts(self):
        assert self.r0_after(Mov(0, imm=0b1100),
                             Alu("and", 0, imm=0b1010)) == 0b1000
        assert self.r0_after(Mov(0, imm=0b1100),
                             Alu("or", 0, imm=0b1010)) == 0b1110
        assert self.r0_after(Mov(0, imm=0b1100),
                             Alu("xor", 0, imm=0b1010)) == 0b0110
        assert self.r0_after(Mov(0, imm=1), Alu("lsh", 0, imm=4)) == 16
        assert self.r0_after(Mov(0, imm=16), Alu("rsh", 0, imm=4)) == 1
        # Shift amounts are masked to 6 bits (64-bit machine).
        assert self.r0_after(Mov(0, imm=1), Alu("lsh", 0, imm=64)) == 1

    def test_results_wrap_to_64_bits(self):
        assert self.r0_after(Mov(0, imm=M64),
                             Alu("add", 0, imm=1)) == 0
        assert self.r0_after(Mov(0, imm=0),
                             Alu("sub", 0, imm=1)) == M64

    def test_register_to_register_operands(self):
        assert self.r0_after(Mov(0, imm=6), Mov(1, imm=7),
                             Alu("mul", 0, src=1)) == 42


class TestMemory:
    def test_ldpkt_widths_are_big_endian(self):
        data = bytes(range(16))
        for width, expect in ((1, 0x02), (2, 0x0203),
                              (4, 0x02030405),
                              (8, 0x0203040506070809)):
            (action, _v, out, _n, modified), _ = run(
                [LdPkt(0, 2, width), StStack(0, 0, 8),
                 JmpIf("eq", 0, off=1, imm=expect),
                 Ret(ACT_DROP), Ret(ACT_PASS)],
                data=data, min_len=16)
            assert action == ACT_PASS, f"width {width}"

    def test_stpkt_copy_on_write(self):
        data = bytes(16)
        (action, _v, out, _n, modified), _ = run(
            [Mov(0, imm=0xBEEF), StPkt(4, 0, 2), Ret(ACT_PASS)],
            data=data, min_len=16)
        assert action == ACT_PASS and modified
        assert out[4:6] == b"\xbe\xef"
        assert data == bytes(16)            # original untouched
        assert out[:4] == data[:4] and out[6:] == data[6:]

    def test_pass_without_store_is_not_modified(self):
        (action, _v, out, _n, modified), _ = run(
            [LdPkt(0, 0, 8), Ret(ACT_PASS)],
            data=bytes(range(16)), min_len=16)
        assert action == ACT_PASS and not modified
        assert out == bytes(range(16))

    def test_store_masks_to_width(self):
        (action, _v, out, _n, _m), _ = run(
            [Mov(0, imm=0x1_22_33), StPkt(0, 0, 2), Ret(ACT_PASS)],
            data=bytes(8), min_len=8)
        assert out[0:2] == b"\x22\x33"      # high bits truncated

    def test_stack_round_trip(self):
        (action, _v, _o, _n, _m), _ = run(
            [Mov(0, imm=0xCAFE), StStack(8, 0, 8),
             LdStack(1, 8, 8),
             JmpIf("eq", 1, off=1, imm=0xCAFE),
             Ret(ACT_DROP), Ret(ACT_PASS)])
        assert action == ACT_PASS

    def test_stack_starts_zeroed(self):
        (action, _v, _o, _n, _m), _ = run(
            [LdStack(0, 0, 8),
             JmpIf("eq", 0, off=1, imm=0),
             Ret(ACT_DROP), Ret(ACT_PASS)])
        assert action == ACT_PASS


class TestMetaAndBranches:
    def test_ldmeta_fields(self):
        data = bytes(33)
        (action, _v, _o, _n, _m), _ = run(
            [LdMeta(0, "len"),
             JmpIf("ne", 0, off=4, imm=33),
             LdMeta(1, "queue"),
             JmpIf("ne", 1, off=2, imm=5),
             LdMeta(2, "now_ns"),
             Ret(ACT_PASS), Ret(ACT_DROP)],
            data=data, now=1.5e-6, queue=5)
        assert action == ACT_PASS

    def test_now_ns_is_integer_nanoseconds(self):
        (action, _v, _o, _n, _m), _ = run(
            [LdMeta(0, "now_ns"),
             JmpIf("eq", 0, off=1, imm=2500),
             Ret(ACT_DROP), Ret(ACT_PASS)],
            now=2.5e-6)
        assert action == ACT_PASS

    def test_jmp_skips(self):
        (action, _v, _o, executed, _m), _ = run(
            [Jmp(1), Ret(ACT_DROP), Ret(ACT_PASS)])
        assert action == ACT_PASS
        assert executed == 2                # Jmp + the taken Ret

    def test_every_condition(self):
        cases = [("eq", 5, 5, True), ("eq", 5, 6, False),
                 ("ne", 5, 6, True), ("ne", 5, 5, False),
                 ("lt", 4, 5, True), ("lt", 5, 5, False),
                 ("le", 5, 5, True), ("le", 6, 5, False),
                 ("gt", 6, 5, True), ("gt", 5, 5, False),
                 ("ge", 5, 5, True), ("ge", 4, 5, False)]
        for cond, a, b, taken in cases:
            (action, _v, _o, _n, _m), _ = run(
                [Mov(0, imm=a), JmpIf(cond, 0, off=1, imm=b),
                 Ret(ACT_DROP), Ret(ACT_PASS)])
            expect = ACT_PASS if taken else ACT_DROP
            assert action == expect, f"{cond}({a},{b})"


class TestMaps:
    def test_lookup_hit_and_update(self):
        m = ProgMap(16)
        m.set(7, 70)
        (action, _v, _o, _n, _m), loaded = run(
            [Mov(1, imm=7), MapLookup(0, 0, key=1),
             Alu("add", 0, imm=1),
             MapUpdate(0, key=1, value=0),
             Ret(ACT_PASS)], maps=(m,))
        assert action == ACT_PASS
        assert m.get(7) == 71

    def test_lookup_miss_branch(self):
        m = ProgMap(16)
        (action, _v, _o, _n, _m), _ = run(
            [Mov(1, imm=9), MapLookup(0, 0, key=1, miss=1),
             Ret(ACT_DROP), Ret(ACT_PASS)], maps=(m,))
        assert action == ACT_PASS           # miss skipped the drop

    def test_lookup_miss_without_branch_loads_zero(self):
        m = ProgMap(16)
        (action, _v, _o, _n, _m), _ = run(
            [Mov(0, imm=99), Mov(1, imm=9),
             MapLookup(0, 0, key=1),
             JmpIf("eq", 0, off=1, imm=0),
             Ret(ACT_DROP), Ret(ACT_PASS)], maps=(m,))
        assert action == ACT_PASS

    def test_map_delete(self):
        m = ProgMap(16)
        m.set(3, 30)
        (action, _v, _o, _n, _m), _ = run(
            [Mov(1, imm=3), MapDelete(0, key=1), Ret(ACT_PASS)],
            maps=(m,))
        assert action == ACT_PASS
        assert m.get(3) is None

    def test_datapath_update_on_full_map_counts_and_continues(self):
        m = ProgMap(2)
        m.set(1, 1)
        m.set(2, 2)
        (action, _v, _o, _n, _m), loaded = run(
            [Mov(1, imm=50), Mov(2, imm=5),
             MapUpdate(0, key=1, value=2), Ret(ACT_PASS)], maps=(m,))
        assert action == ACT_PASS           # datapath never faults
        assert loaded.stats_map_full == 1
        assert m.get(50) is None


class TestVerdictsAndCounters:
    def test_redirect_carries_vport(self):
        (action, vport, _o, _n, _m), _ = run([Ret(ACT_REDIRECT,
                                                  vport=9)])
        assert action == ACT_REDIRECT and vport == 9

    def test_drop(self):
        (action, _v, _o, _n, _m), _ = run([Ret(ACT_DROP)])
        assert action == ACT_DROP

    def test_short_packet_bypasses(self):
        (action, _v, out, executed, modified), loaded = run(
            [LdPkt(0, 0, 8), Ret(ACT_DROP)], data=b"tiny", min_len=42)
        assert action == ACT_PASS and executed == 0 and not modified
        assert out == b"tiny"
        assert loaded.stats_short == 1
        assert loaded.stats_runs == 0

    def test_insn_accounting(self):
        (_a, _v, _o, executed, _m), loaded = run(
            [Mov(0, imm=1), Mov(1, imm=2), Ret(ACT_PASS)])
        assert executed == 3
        assert loaded.stats_insns == 3
        assert loaded.stats_runs == 1
