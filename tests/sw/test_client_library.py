"""Unit tests for the FLD-R client library and batching driver bits."""

import pytest

from repro.accelerators import RdmaEchoAccelerator
from repro.accelerators.zuc.extensions import (
    CompactRequest,
    OP_SET_KEY,
    make_set_key,
    pack_batch,
    unpack_batch,
)
from repro.sim import Simulator
from repro.sw import FldRClient, FldRControlPlane, FldRuntime
from repro.testbed import make_local_node

FLD_MAC = "02:00:00:00:00:99"
CLIENT_MAC = "02:00:00:00:00:01"


def build(sim):
    node = make_local_node(sim)
    node.add_vport_for_mac(1, CLIENT_MAC)
    node.add_vport_for_mac(2, FLD_MAC)
    runtime = FldRuntime(node)
    control = FldRControlPlane(runtime, vport=2, mac=FLD_MAC,
                               ip="10.0.0.2")
    accel = RdmaEchoAccelerator(sim, runtime.fld, units=1)
    client = FldRClient(node.driver, vport=1, mac=CLIENT_MAC,
                        ip="10.0.0.1")
    return node, runtime, control, accel, client


class TestFldRClient:
    def test_connect_wires_both_qps(self):
        sim = Simulator()
        _node, _runtime, control, _accel, client = build(sim)
        connection = client.connect(control)
        server_qp = control.qps[0]
        assert server_qp.remote_qpn == connection.endpoint.qpn
        assert connection.endpoint.qp.remote_qpn == server_qp.qpn

    def test_call_roundtrip(self):
        sim = Simulator()
        _node, _runtime, control, accel, client = build(sim)
        connection = client.connect(control)
        accel.tx_queue = connection.info.queue_id
        result = {}

        def proc(sim):
            response = yield sim.spawn(
                _call(sim, connection, b"echo me"))
            result["response"] = response

        def _call(sim, connection, message):
            response = yield from connection.call(message)
            return response

        sim.spawn(proc(sim))
        sim.run(until=0.05)
        assert result["response"] == b"echo me"
        assert connection.stats_calls == 1

    def test_multiple_connections_isolated(self):
        sim = Simulator()
        _node, _runtime, control, accel, client = build(sim)
        a = client.connect(control)
        b = client.connect(control)
        assert a.endpoint.qpn != b.endpoint.qpn
        assert a.info.queue_id != b.info.queue_id


class TestBatchFramingEdges:
    def test_batch_of_255_allowed(self):
        entries = [bytes([i % 250]) for i in range(255)]
        assert unpack_batch(pack_batch(entries)) == entries

    def test_batch_of_256_rejected(self):
        with pytest.raises(ValueError):
            pack_batch([b"x"] * 256)

    def test_oversized_entry_rejected(self):
        with pytest.raises(ValueError):
            pack_batch([b"x" * 70000])

    def test_set_key_message_shape(self):
        message = make_set_key(3, bytes(range(16)), request_id=9)
        header = CompactRequest.unpack(message)
        assert header.op == OP_SET_KEY
        assert header.slot == 3
        assert message[16:] == bytes(range(16))
