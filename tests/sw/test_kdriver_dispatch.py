"""Kernel-driver error dispatch: a faulty handler must not take the
error channel down with it (§5.3).

The pump is the only consumer of the FLD's hardware error ring; if one
registered handler raising killed it, every later error would sit in
the channel unseen.  Failures are quarantined into
``handler_failures`` and the remaining handlers still run, in
registration order.
"""

from repro.core import FldError
from repro.sim import Simulator
from repro.sw import FldKernelDriver, FldRuntime
from repro.testbed import make_local_node

FLD_MAC = "02:00:00:00:00:99"


def make_kdriver():
    sim = Simulator()
    node = make_local_node(sim)
    node.add_vport_for_mac(2, FLD_MAC)
    runtime = FldRuntime(node)
    return sim, runtime, FldKernelDriver(sim, runtime.fld)


class TestDispatchIsolation:
    def test_raising_handler_does_not_kill_the_pump(self):
        sim, runtime, kdriver = make_kdriver()
        seen = []

        def bomb(error):
            raise RuntimeError("handler bug")

        kdriver.on_error(bomb)
        kdriver.on_error(seen.append)
        runtime.fld.errors.report(FldError.BUFFER_EXHAUSTED, queue=1)
        sim.run(until=0.001)
        runtime.fld.errors.report(FldError.BUFFER_EXHAUSTED, queue=2)
        sim.run(until=0.002)
        # Both errors dispatched: the pump survived the first raise.
        assert [e.queue for e in seen] == [1, 2]
        assert len(kdriver.error_log) == 2

    def test_failures_are_recorded_with_their_error(self):
        sim, runtime, kdriver = make_kdriver()
        boom = RuntimeError("handler bug")

        def bomb(error):
            raise boom

        kdriver.on_error(bomb)
        runtime.fld.errors.report(FldError.RING_OVERFLOW, queue=3)
        sim.run(until=0.001)
        assert len(kdriver.handler_failures) == 1
        handler, error, exc = kdriver.handler_failures[0]
        assert handler is bomb
        assert error.queue == 3
        assert exc is boom

    def test_handlers_run_in_registration_order(self):
        sim, runtime, kdriver = make_kdriver()
        order = []
        kdriver.on_error(lambda e: order.append("first"))
        kdriver.on_error(lambda e: (_ for _ in ()).throw(ValueError()))
        kdriver.on_error(lambda e: order.append("third"))
        runtime.fld.errors.report(FldError.BUFFER_EXHAUSTED, queue=1)
        sim.run(until=0.001)
        assert order == ["first", "third"]

    def test_errors_of_kind_filters_the_log(self):
        sim, runtime, kdriver = make_kdriver()
        runtime.fld.errors.report(FldError.BUFFER_EXHAUSTED, queue=1)
        runtime.fld.errors.report(FldError.RING_OVERFLOW, queue=2)
        runtime.fld.errors.report(FldError.BUFFER_EXHAUSTED, queue=4)
        sim.run(until=0.001)
        exhausted = kdriver.errors_of_kind(FldError.BUFFER_EXHAUSTED)
        assert [e.queue for e in exhausted] == [1, 4]
        assert kdriver.errors_of_kind("nonesuch") == []
