"""Unit tests for the FLD software stack: runtime, control planes,
kernel driver, cryptodev marshalling."""

import pytest

from repro.accelerators.zuc import (
    HEADER_SIZE,
    OP_EEA3,
    OP_EIA3,
    ZucRequest,
    make_request,
    parse_response,
)
from repro.core import FldError
from repro.nic import (
    Drop,
    ForwardToQueue,
    MatchSpec,
    Meter,
    SendQueue,
    SetContextId,
)
from repro.sim import Simulator
from repro.sw import (
    FldEControlPlane,
    FldEPolicyError,
    FldKernelDriver,
    FldRControlPlane,
    FldRuntime,
    FldRuntimeError,
)
from repro.testbed import FLD_BAR_BASE, make_local_node


def make_runtime():
    sim = Simulator()
    node = make_local_node(sim)
    node.add_vport_for_mac(2, "02:00:00:00:00:99")
    return sim, node, FldRuntime(node)


class TestFldRuntime:
    def test_eth_tx_queue_binds_ring_in_fld_bar(self):
        _sim, node, runtime = make_runtime()
        queue_id = runtime.create_eth_tx_queue(vport=2)
        sq = node.nic.sqs[1]
        assert FLD_BAR_BASE <= sq.ring_addr < FLD_BAR_BASE + (1 << 24)
        assert runtime.fld.tx.queue(queue_id).qpn == sq.qpn

    def test_rx_queue_ring_in_host_memory(self):
        _sim, node, runtime = make_runtime()
        rq = runtime.create_rx_queue(vport=2)
        # The descriptor ring is NOT in the FLD BAR (§5.2).
        assert rq.ring_addr < FLD_BAR_BASE
        # It is fully posted and its descriptors point at FLD SRAM.
        assert rq.available == rq.entries
        from repro.nic import RxDesc
        desc = RxDesc.unpack(node.memory.read_local(rq.slot_addr(0), 16))
        assert desc.buffer_addr >= FLD_BAR_BASE

    def test_fldr_qp_uses_rdma_opcode(self):
        _sim, node, runtime = make_runtime()
        qp, queue_id = runtime.create_fldr_qp(
            vport=2, local_mac="02:00:00:00:00:99", local_ip="10.0.0.2")
        assert qp.sq.transport == SendQueue.TRANSPORT_RC
        from repro.nic import OP_RDMA_SEND
        assert runtime.fld.tx.queue(queue_id).opcode == OP_RDMA_SEND

    def test_tx_queue_slots_bounded(self):
        _sim, _node, runtime = make_runtime()
        for _ in range(16):
            runtime.create_eth_tx_queue(vport=2)
        with pytest.raises(FldRuntimeError):
            runtime.create_eth_tx_queue(vport=2)


class TestFldEControlPlane:
    def test_accelerate_installs_resume_table(self):
        _sim, node, runtime = make_runtime()
        control = FldEControlPlane(runtime, vport=2)
        rq = runtime.create_rx_queue(vport=2, set_default=False)
        marker = object()
        control.accelerate(MatchSpec(ip_proto=17), rq,
                           resume_actions=[ForwardToQueue(marker)],
                           resume_table="resume-x")
        assert "resume-x" in node.nic.steering.tables
        assert node.nic._resume_tables  # registered for tx-side resume

    def test_untrusted_context_forgery_rejected(self):
        _sim, _node, runtime = make_runtime()
        control = FldEControlPlane(runtime, vport=2)
        with pytest.raises(FldEPolicyError):
            control.install_tenant_rule(
                MatchSpec(), [SetContextId(99), Drop()])

    def test_untrusted_benign_rule_accepted(self):
        _sim, _node, runtime = make_runtime()
        control = FldEControlPlane(runtime, vport=2)
        rule = control.install_tenant_rule(MatchSpec(dst_port=80), [Drop()])
        assert rule in control.table.rules

    def test_tenant_ids_validated(self):
        _sim, _node, runtime = make_runtime()
        control = FldEControlPlane(runtime, vport=2)
        rq = runtime.create_rx_queue(vport=2, set_default=False)
        with pytest.raises(FldEPolicyError):
            control.add_tenant(0, MatchSpec(), rq, [Drop()])
        with pytest.raises(FldEPolicyError):
            control.add_tenant(1 << 16, MatchSpec(), rq, [Drop()])

    def test_tenant_rate_limit_creates_meter(self):
        _sim, node, runtime = make_runtime()
        control = FldEControlPlane(runtime, vport=2)
        rq = runtime.create_rx_queue(vport=2, set_default=False)
        rule = control.add_tenant(5, MatchSpec(src_ip="10.0.0.5"), rq,
                                  [Drop()], rate_bps=1e9)
        assert node.nic.shaper.has_limiter("tenant5")
        assert any(isinstance(a, Meter) for a in rule.actions)


class TestFldRControlPlane:
    def test_accept_creates_connected_qp(self):
        _sim, _node, runtime = make_runtime()
        control = FldRControlPlane(runtime, vport=2,
                                   mac="02:00:00:00:00:99", ip="10.0.0.2")
        info = control.accept("02:00:00:00:00:01", "10.0.0.1",
                              client_qpn=77)
        qp = control.qps[0]
        assert qp.remote_qpn == 77
        assert info.qpn == qp.qpn
        assert control.queue_map  # reply routing for the accelerator

    def test_multiple_connections_get_distinct_qps(self):
        _sim, _node, runtime = make_runtime()
        control = FldRControlPlane(runtime, vport=2,
                                   mac="02:00:00:00:00:99", ip="10.0.0.2")
        a = control.accept("02:00:00:00:00:01", "10.0.0.1", 1)
        b = control.accept("02:00:00:00:00:02", "10.0.0.3", 2)
        assert a.qpn != b.qpn
        assert control.stats_connections == 2


class TestKernelDriver:
    def test_error_pump_logs_and_dispatches(self):
        sim, _node, runtime = make_runtime()
        kdriver = FldKernelDriver(sim, runtime.fld)
        seen = []
        kdriver.on_error(seen.append)
        runtime.fld.errors.report(FldError.CQE_ERROR, queue=1, syndrome=2)
        runtime.fld.errors.report(FldError.BUFFER_EXHAUSTED, queue=1)
        sim.run()
        assert len(kdriver.error_log) == 2
        assert len(seen) == 2
        assert len(kdriver.errors_of_kind(FldError.CQE_ERROR)) == 1


class TestZucWireFormat:
    def test_request_roundtrip(self):
        message = make_request(OP_EEA3, bytes(range(16)), b"payload",
                               count=9, bearer=4, direction=1,
                               request_id=0xCAFE)
        header = ZucRequest.unpack(message)
        assert header.op == OP_EEA3
        assert header.count == 9
        assert header.bearer == 4
        assert header.direction == 1
        assert header.request_id == 0xCAFE
        assert message[HEADER_SIZE:] == b"payload"

    def test_header_is_64_bytes(self):
        assert len(ZucRequest(OP_EIA3, bytes(16)).pack()) == 64

    def test_parse_response(self):
        header = ZucRequest(OP_EIA3, bytes(16), mac=0xDEAD)
        parsed, payload = parse_response(header.pack() + b"extra")
        assert parsed.mac == 0xDEAD
        assert payload == b"extra"

    def test_truncated_header_rejected(self):
        with pytest.raises(ValueError):
            ZucRequest.unpack(b"\x00" * 10)
