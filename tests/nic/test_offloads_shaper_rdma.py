"""Unit tests for checksum offloads, the shaper and the RDMA engine."""

import pytest

from repro.net import Flow, Ipv4, PROTO_TCP, PROTO_UDP, Tcp, Udp, \
    fragment_packet
from repro.nic import CQE_FLAG_L3_OK, CQE_FLAG_L4_OK, ChecksumOffload, \
    Shaper
from repro.nic.rdma import RcQp, RdmaEngine, RdmaError
from repro.nic.wqe import OP_RDMA_SEND, TxWqe
from repro.sim import Simulator


def tcp_packet(payload=b"data", checksum=True):
    flow = Flow("02:00:00:00:00:01", "02:00:00:00:00:02",
                "10.0.0.1", "10.0.0.2", 80, 443, proto=PROTO_TCP)
    return flow.make_packet(payload, fill_checksums=checksum)


class TestChecksumOffload:
    def test_valid_packet_sets_both_flags(self):
        flags = ChecksumOffload().validate(tcp_packet())
        assert flags & CQE_FLAG_L3_OK
        assert flags & CQE_FLAG_L4_OK

    def test_corrupt_l4_clears_flag(self):
        packet = tcp_packet()
        packet.find(Tcp).checksum ^= 0xFFFF
        flags = ChecksumOffload().validate(packet)
        assert flags & CQE_FLAG_L3_OK
        assert not (flags & CQE_FLAG_L4_OK)

    def test_fragment_skips_l4_validation(self):
        offload = ChecksumOffload()
        packet = tcp_packet(payload=bytes(3000))
        fragment = fragment_packet(packet, mtu=1500)[0]
        flags = offload.validate(fragment)
        assert flags & CQE_FLAG_L3_OK
        assert not (flags & CQE_FLAG_L4_OK)
        assert offload.stats_rx_l4_skipped == 1

    def test_tx_fill_produces_valid_checksum(self):
        packet = tcp_packet(checksum=False)
        ChecksumOffload().fill(packet)
        ip = packet.find(Ipv4)
        assert packet.find(Tcp).verify(ip.src, ip.dst, packet.payload)


class TestShaper:
    def test_police_passes_then_drops(self):
        sim = Simulator()
        shaper = Shaper(sim)
        shaper.add_limiter("t", rate_bps=1e6, burst_bits=8000)
        assert shaper.police("t", 8000)
        assert not shaper.police("t", 1)
        assert shaper.stats_dropped["t"] == 1

    def test_unknown_meter_passes(self):
        sim = Simulator()
        assert Shaper(sim).police("ghost", 1e12)

    def test_refill_restores_budget(self):
        sim = Simulator()
        shaper = Shaper(sim)
        shaper.add_limiter("t", rate_bps=1e6, burst_bits=1000)
        shaper.police("t", 1000)

        def later(sim):
            yield sim.timeout(1e-3)  # 1000 bits accrue
            assert shaper.police("t", 900)

        sim.spawn(later(sim))
        sim.run()

    def test_delay_for_shaping(self):
        sim = Simulator()
        shaper = Shaper(sim)
        shaper.add_limiter("t", rate_bps=1000.0, burst_bits=0.0)
        assert shaper.delay_for("t", 500) == pytest.approx(0.5)

    def test_remove_limiter(self):
        sim = Simulator()
        shaper = Shaper(sim)
        shaper.add_limiter("t", 1e3)
        shaper.remove_limiter("t")
        assert not shaper.has_limiter("t")


class _Loopback:
    """Two RDMA engines wired directly (no NIC) for transport tests."""

    def __init__(self, sim, drop_first_n=0):
        self.sim = sim
        self.delivered = {"a": [], "b": []}
        self.completed = []
        self.drop_remaining = drop_first_n
        self.a = self._engine("a", "b")
        self.b = self._engine("b", "a")
        self.qp_a = RcQp(1, _FakeSq(), None, _mac(1), _ip(1))
        self.qp_b = RcQp(2, _FakeSq(), None, _mac(2), _ip(2))
        self.a.register_qp(self.qp_a)
        self.b.register_qp(self.qp_b)
        self.qp_a.connect(_mac(2), _ip(2), 2)
        self.qp_b.connect(_mac(1), _ip(1), 1)

    def _engine(self, name, peer_name):
        def egress(qp, frame, name=name, peer_name=peer_name):
            if frame.find_all(type(None)):
                pass
            if self.drop_remaining > 0 and name == "a":
                from repro.net import Bth
                bth = frame.find(Bth)
                if bth is not None and not bth.is_ack:
                    self.drop_remaining -= 1
                    return  # lost on the wire
            peer = self.b if peer_name == "b" else self.a
            # Deliver with a small wire delay.
            self.sim.schedule(1e-6, lambda: peer.on_ingress(frame))

        def deliver(qp, payload, flags, context, first, last,
                    name=name):
            self.delivered[name].append(payload)

        def complete(qp, wqe):
            self.completed.append(wqe.wqe_index)

        return RdmaEngine(self.sim, mtu=1024, retransmit_timeout=50e-6,
                          egress=egress, deliver_segment=deliver,
                          complete_send=complete)


class _FakeSq:
    qpn = 0
    vport = 0


def _mac(n):
    return f"02:00:00:00:00:{n:02x}"


def _ip(n):
    return f"10.0.0.{n}"


class TestRdmaEngine:
    def test_message_segmentation_and_delivery(self):
        sim = Simulator()
        loop = _Loopback(sim)
        wqe = TxWqe(OP_RDMA_SEND, 1, 0, 0, 2500)

        sim.spawn(loop.a.send_message(loop.qp_a, wqe, bytes(2500)))
        sim.run(until=0.01)
        # 3 segments at MTU 1024 delivered to b in order.
        assert [len(p) for p in loop.delivered["b"]] == [1024, 1024, 452]
        # Send completion fired after the ack.
        assert loop.completed == [0]

    def test_retransmission_recovers_loss(self):
        sim = Simulator()
        loop = _Loopback(sim, drop_first_n=1)
        wqe = TxWqe(OP_RDMA_SEND, 1, 0, 0, 2048)

        sim.spawn(loop.a.send_message(loop.qp_a, wqe, bytes(2048)))
        sim.run(until=0.01)
        assert sum(len(p) for p in loop.delivered["b"]) == 2048
        assert loop.qp_a.stats_retransmits > 0
        assert loop.completed == [0]

    def test_duplicate_segment_reacked_not_redelivered(self):
        sim = Simulator()
        loop = _Loopback(sim)
        wqe = TxWqe(OP_RDMA_SEND, 1, 0, 0, 100)
        sim.spawn(loop.a.send_message(loop.qp_a, wqe, b"x" * 100))
        # Duplicate the segment mid-flight (as a spurious retransmission
        # after a delayed ack would).
        def dup(sim):
            yield sim.timeout(0.5e-6)
            if loop.qp_a.outstanding:
                loop.a._retransmit(loop.qp_a)

        sim.spawn(dup(sim))
        sim.run(until=0.01)
        assert loop.delivered["b"] == [b"x" * 100]
        assert loop.qp_b.stats_duplicate_segments == 1
        assert loop.completed == [0]

    def test_unconnected_send_rejected(self):
        sim = Simulator()
        engine = RdmaEngine(sim, egress=lambda *a: None,
                            deliver_segment=lambda *a: None,
                            complete_send=lambda *a: None)
        qp = RcQp(3, _FakeSq(), None, _mac(3), _ip(3))
        engine.register_qp(qp)
        wqe = TxWqe(OP_RDMA_SEND, 3, 0, 0, 10)
        with pytest.raises(RdmaError):
            list(engine.send_message(qp, wqe, b"x"))

    def test_duplicate_qpn_rejected(self):
        sim = Simulator()
        engine = RdmaEngine(sim, egress=lambda *a: None,
                            deliver_segment=lambda *a: None,
                            complete_send=lambda *a: None)
        qp = RcQp(3, _FakeSq(), None, _mac(3), _ip(3))
        engine.register_qp(qp)
        with pytest.raises(RdmaError):
            engine.register_qp(qp)

    def test_foreign_packet_ignored(self):
        sim = Simulator()
        loop = _Loopback(sim)
        from repro.net import Packet
        assert loop.a.on_ingress(Packet(payload=b"not roce")) is False

    def test_per_packet_overhead_accounting(self):
        sim = Simulator()
        engine = RdmaEngine(sim, egress=lambda *a: None,
                            deliver_segment=lambda *a: None,
                            complete_send=lambda *a: None)
        # eth 14 + ip 20 + udp 8 + bth 12 + icrc 4
        assert engine.per_packet_overhead() == 58
