"""The firmware command channel: wire format, mailbox, doorbell path.

The control plane talks to the NIC like mlx5 firmware: commands are
serialized into a host-memory mailbox, a doorbell TLP over the BAR
starts the firmware, and the response lands back in the mailbox.  The
synchronous ``execute`` facade short-circuits the timing (bring-up
stays schedule-identical); the ``call`` generator pays the full
doorbell/DMA/exec-delay round trip on the simulated clock.
"""

import pytest

from repro.nic import CmdError, CmdStatus, CommandChannel
from repro.nic.cmd import (
    CMD_MAGIC,
    CreateCq,
    CreateSq,
    CreateVport,
    DestroyObject,
    FIRMWARE_EXEC_DELAY,
    InstallRule,
    ModifyQp,
    RSP_MAGIC,
    RegisterResumeTable,
    RESPONSE_OFFSET,
    pack_command,
    unpack_command,
)
from repro.nic import MatchSpec, ForwardToVport
from repro.sim import Simulator
from repro.testbed import HOST_MEM_BASE, make_local_node
from repro.topology.addrmap import CMD_MAILBOX_OFFSET


class TestWireFormat:
    def test_roundtrip_ints_and_defaults(self):
        cmd = CreateCq(ring_addr=0x1234_5678, entries=256)
        raw, ext = pack_command(cmd, seq=7)
        assert ext == []
        decoded, seq = unpack_command(raw, ext)
        assert seq == 7
        assert decoded == cmd

    def test_roundtrip_strings_none_and_ext_objects(self):
        sentinel = object()   # a live reference rides the side band
        cmd = CreateSq(ring_addr=1, entries=64, cq=sentinel, vport=3,
                       transport="rc", meter=None)
        raw, ext = pack_command(cmd, seq=1)
        assert ext == [sentinel]
        decoded, _seq = unpack_command(raw, ext)
        assert decoded.cq is sentinel
        assert decoded.transport == "rc"
        assert decoded.meter is None

    def test_roundtrip_every_opcode_default_instance(self):
        from repro.nic.cmd import OPCODES
        for opcode, cls in sorted(OPCODES.items()):
            raw, ext = pack_command(cls(), seq=opcode)
            decoded, seq = unpack_command(raw, ext)
            assert seq == opcode
            assert type(decoded) is cls

    def test_bad_magic_rejected(self):
        raw, ext = pack_command(CreateVport(vport=1), seq=1)
        mangled = b"\x00\x00" + raw[2:]
        with pytest.raises(CmdError) as err:
            unpack_command(mangled, ext)
        assert err.value.status == CmdStatus.BAD_OPCODE

    def test_unknown_opcode_rejected(self):
        raw, ext = pack_command(CreateVport(vport=1), seq=1)
        mangled = raw[:2] + b"\xff\xff" + raw[4:]
        with pytest.raises(CmdError) as err:
            unpack_command(mangled, ext)
        assert err.value.status == CmdStatus.BAD_OPCODE


class TestSyncExecute:
    def test_command_and_response_land_in_the_mailbox(self):
        sim = Simulator()
        node = make_local_node(sim)
        channel = node.driver.channel
        result = channel.execute(CreateCq(ring_addr=HOST_MEM_BASE + 0x9000,
                                          entries=64))
        assert result.ok
        header = node.memory.read_local(CMD_MAILBOX_OFFSET, 2)
        assert int.from_bytes(header, "big") == CMD_MAGIC
        response = node.memory.read_local(
            CMD_MAILBOX_OFFSET + RESPONSE_OFFSET, 2)
        assert int.from_bytes(response, "big") == RSP_MAGIC

    def test_oversized_command_overflows_the_mailbox(self):
        sim = Simulator()
        node = make_local_node(sim)
        with pytest.raises(CmdError) as err:
            node.driver.channel.execute(
                RegisterResumeTable(table_name="x" * RESPONSE_OFFSET))
        assert err.value.status == CmdStatus.BAD_PARAM

    def test_failure_status_is_returned_not_raised(self):
        sim = Simulator()
        node = make_local_node(sim)
        result = node.driver.channel.execute(
            ModifyQp(qp=object(), state="rts"))
        assert not result.ok
        assert result.status == CmdStatus.BAD_HANDLE


class TestTimedCall:
    def test_doorbell_round_trip_takes_firmware_time(self):
        sim = Simulator()
        node = make_local_node(sim)
        channel = node.driver.channel
        done = []

        def proc(sim):
            result = yield from channel.call(
                CreateCq(ring_addr=HOST_MEM_BASE + 0x9000, entries=64))
            done.append((sim.now, result))

        sim.spawn(proc(sim))
        sim.run(until=0.001)
        assert len(done) == 1
        elapsed, result = done[0]
        assert result.ok
        assert result.handle != 0
        # Mailbox DMA + doorbell + exec delay: strictly slower than the
        # synchronous facade, at least the firmware execution time.
        assert elapsed >= FIRMWARE_EXEC_DELAY
        assert channel.stats_timed == 1
        # The created CQ is a real firmware object.
        assert node.nic.cmd.table.get(result.handle).kind == "cq"

    def test_timed_call_carries_live_references_side_band(self):
        sim = Simulator()
        node = make_local_node(sim)
        node.add_vport_for_mac(2, "02:00:00:00:00:99")
        channel = node.driver.channel
        done = []

        def proc(sim):
            cq = yield from channel.call(
                CreateCq(ring_addr=HOST_MEM_BASE + 0x9000, entries=64))
            sq = yield from channel.call(
                CreateSq(ring_addr=HOST_MEM_BASE + 0xA000, entries=64,
                         cq=cq.obj, vport=2))
            done.append(sq)

        sim.spawn(proc(sim))
        sim.run(until=0.001)
        assert done and done[0].ok
        assert node.nic.cmd.table.get(done[0].handle).kind == "sq"

    def test_channel_without_fabric_refuses_timed_calls(self):
        sim = Simulator()
        node = make_local_node(sim)
        bare = CommandChannel(node.nic)

        def proc(sim):
            yield from bare.call(CreateVport(vport=1))

        with pytest.raises(CmdError) as err:
            # The generator raises before its first yield.
            next(proc(sim))
        assert err.value.status == CmdStatus.INTERNAL


class TestRuleCommands:
    def test_install_rule_references_its_vport(self):
        sim = Simulator()
        node = make_local_node(sim)
        ctrl = node.driver.ctrl
        vport = ctrl.ensure_vport(4)
        rule = ctrl.install_rule(
            "fdb", MatchSpec(dst_mac="02:00:00:00:00:04"),
            [ForwardToVport(4)], priority=10)
        vport_handle = ctrl.handle_of(vport)
        rule_handle = ctrl.handle_of(rule)
        entry = node.nic.cmd.table.get(rule_handle)
        assert vport_handle in entry.deps
        # The vPort is pinned while the rule stands.
        result = node.driver.channel.execute(
            DestroyObject(handle=vport_handle))
        assert result.status == CmdStatus.IN_USE
