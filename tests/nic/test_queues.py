"""Unit tests for NIC queue state machines."""

import pytest

from repro.net import RssEngine, make_flows
from repro.nic import (
    CompletionQueue,
    MultiPacketReceiveQueue,
    QueueError,
    ReceiveQueue,
    RssGroup,
    SendQueue,
)
from repro.sim import Simulator


def sim_and_cq():
    sim = Simulator()
    return sim, CompletionQueue(sim, 1, 0x1000, 256)


class TestCompletionQueue:
    def test_slots_advance_and_wrap(self):
        sim, cq = sim_and_cq()
        first = cq.next_slot()
        second = cq.next_slot()
        assert second == first + 64
        for _ in range(254):
            cq.next_slot()
        assert cq.next_slot() == first  # wrapped around the ring

    def test_entries_must_be_power_of_two(self):
        sim = Simulator()
        with pytest.raises(QueueError):
            CompletionQueue(sim, 1, 0, 100)


class TestSendQueue:
    def _sq(self, entries=16):
        sim, cq = sim_and_cq()
        return sim, SendQueue(sim, 7, 0x2000, entries, cq)

    def test_doorbell_advances_pi(self):
        _sim, sq = self._sq()
        sq.ring_doorbell(3)
        assert sq.pi == 3
        assert sq.outstanding == 3
        assert len(sq.doorbell) == 1

    def test_backwards_doorbell_rejected(self):
        _sim, sq = self._sq()
        sq.ring_doorbell(5)
        with pytest.raises(QueueError):
            sq.ring_doorbell(4)

    def test_overflow_doorbell_rejected(self):
        _sim, sq = self._sq(entries=8)
        with pytest.raises(QueueError):
            sq.ring_doorbell(9)

    def test_slot_addresses_wrap(self):
        _sim, sq = self._sq(entries=16)
        assert sq.slot_addr(0) == 0x2000
        assert sq.slot_addr(16) == 0x2000
        assert sq.slot_addr(17) == 0x2000 + 64

    def test_invalid_transport_rejected(self):
        sim, cq = sim_and_cq()
        with pytest.raises(QueueError):
            SendQueue(sim, 1, 0, 16, cq, transport="udp")


class TestReceiveQueue:
    def test_post_and_consume(self):
        sim, cq = sim_and_cq()
        rq = ReceiveQueue(sim, 1, 0x3000, 64, cq)
        rq.post(10)
        assert rq.available == 10
        rq.ci += 3
        assert rq.available == 7

    def test_overpost_rejected(self):
        sim, cq = sim_and_cq()
        rq = ReceiveQueue(sim, 1, 0, 8, cq)
        with pytest.raises(QueueError):
            rq.post(9)


class TestMprq:
    def _mprq(self, entries=4, strides=8, stride_size=512):
        sim, cq = sim_and_cq()
        rq = MultiPacketReceiveQueue(sim, 1, 0, entries, cq, strides,
                                     stride_size)
        rq.post(entries)
        return rq

    def test_small_packets_pack_into_strides(self):
        rq = self._mprq()
        placements = [rq.place(100) for _ in range(8)]
        assert all(p is not None for p in placements)
        assert [p["stride_index"] for p in placements] == list(range(8))
        assert placements[-1]["closes_buffer"]
        assert rq.stats_buffers_closed == 1

    def test_large_packet_takes_multiple_strides(self):
        rq = self._mprq()
        placement = rq.place(1500)
        assert placement["strides"] == 3

    def test_tail_fragmentation_bounded(self):
        """A packet that doesn't fit closes the buffer: bounded waste."""
        rq = self._mprq()
        for _ in range(7):
            rq.place(100)
        placement = rq.place(1000)  # needs 2 strides, only 1 left
        assert placement["desc_index"] == 1
        assert placement["stride_index"] == 0
        assert rq.stats_wasted_strides == 1

    def test_oversized_packet_rejected(self):
        rq = self._mprq()
        with pytest.raises(QueueError):
            rq.place(8 * 512 + 1)

    def test_exhaustion_returns_none(self):
        rq = self._mprq(entries=1)
        for _ in range(8):
            assert rq.place(512) is not None
        assert rq.place(512) is None
        assert rq.stats_drops_no_desc == 1

    def test_buffer_size_property(self):
        rq = self._mprq(strides=8, stride_size=512)
        assert rq.buffer_size == 4096


class TestRssGroup:
    def test_selects_spread_queues(self):
        sim, cq = sim_and_cq()
        rqs = [ReceiveQueue(sim, i, 0x1000 * (i + 1), 64, cq)
               for i in range(4)]
        group = RssGroup("test", rqs, RssEngine(queues=list(range(4))))
        chosen = set()
        for flow in make_flows(32, seed=5):
            packet = flow.make_packet(b"x", fill_checksums=False)
            chosen.add(group.select(packet).rqn)
        assert len(chosen) >= 3

    def test_empty_group_rejected(self):
        with pytest.raises(QueueError):
            RssGroup("empty", [], RssEngine(queues=[0]))
