"""Conformance guard: NIC resources are born through the command
channel, nowhere else.

The device's raw constructors (``create_cq`` & co.) are firmware
implementation detail; every other module must go through
:class:`repro.sw.ControlPlane` / :class:`repro.nic.CommandChannel` so
that each resource has a handle, a lifecycle state and a refcounted
table entry.  This AST scan keeps the discipline honest — a direct
call anywhere outside the allowlist fails CI.

The match-action program subsystem (``repro.prog``) extends the rule:
``ProgMap`` and ``load_program`` are firmware-only constructors too —
a program that did not pass through ``CreateProg`` never met the
verifier, and a map created outside ``CreateProgMap`` has no handle and
no refcount pinning it to the programs that use it.  Those names are
plain functions/classes (called by name, not as attributes), so the
scanner matches both ``ast.Attribute`` and ``ast.Name`` call forms.
"""

import ast
from pathlib import Path

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

#: Raw control-plane constructors only the firmware may invoke.
BANNED = {
    "create_cq",
    "create_sq",
    "create_rq",
    "create_mprq",
    "create_rc_qp",
    "set_vport_default_queue",
    "register_resume_table",
    "ProgMap",
    "load_program",
}

#: The firmware itself (command executors + the device they run on) and
#: the modules that *define* the banned program/map constructors.
ALLOWED = {
    "nic/cmd.py",
    "nic/device.py",
    "prog/maps.py",      # defines ProgMap
    "prog/engine.py",    # defines load_program
    "prog/__init__.py",  # re-exports only
}


def direct_calls(path: Path):
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in BANNED:
            yield func.attr, node.lineno
        elif isinstance(func, ast.Name) and func.id in BANNED:
            yield func.id, node.lineno


class TestCommandChannelGuard:
    def test_source_tree_exists(self):
        assert SRC.is_dir(), f"source tree not found at {SRC}"
        assert (SRC / "nic" / "cmd.py").is_file()
        assert (SRC / "prog" / "engine.py").is_file()

    def test_no_direct_constructor_calls_outside_firmware(self):
        offenders = []
        for path in sorted(SRC.rglob("*.py")):
            rel = path.relative_to(SRC).as_posix()
            if rel in ALLOWED:
                continue
            offenders += [f"{rel}:{line} calls {name}() directly"
                          for name, line in direct_calls(path)]
        assert not offenders, (
            "NIC resources must be created through the command channel "
            "(repro.sw.ControlPlane); direct constructor calls found:\n  "
            + "\n  ".join(offenders))

    def test_guard_catches_a_direct_call(self):
        """The scanner itself works (no false all-clear)."""
        snippet = ast.parse("nic.create_cq(ring, 64)")
        hits = [node for node in ast.walk(snippet)
                if isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in BANNED]
        assert len(hits) == 1

    def test_guard_catches_name_form_calls(self):
        """Bare-name constructors (ProgMap(...)) are matched too."""
        snippet = Path(__file__).parent / "_guard_probe.py"
        snippet.write_text("m = ProgMap(64)\np = load_program(prog, [m])\n",
                           encoding="utf-8")
        try:
            hits = sorted(name for name, _ in direct_calls(snippet))
        finally:
            snippet.unlink()
        assert hits == ["ProgMap", "load_program"]
