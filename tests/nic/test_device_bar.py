"""Unit tests for the NIC device's BAR decoding and control interface."""

import pytest

from repro.nic import Nic, NicConfig
from repro.nic.device import (
    DOORBELL_STRIDE,
    RQ_DOORBELL_BASE,
    WQE_MMIO_BASE,
    WQE_MMIO_STRIDE,
)
from repro.nic import OP_ETH_SEND, TxWqe
from repro.pcie import PcieError, PcieFabric
from repro.sim import Simulator


def make_nic():
    sim = Simulator()
    fabric = PcieFabric(sim)
    nic = Nic(sim, fabric, "nic")
    return sim, nic


class TestDoorbellDecode:
    def test_sq_doorbell_advances_pi(self):
        sim, nic = make_nic()
        cq = nic.create_cq(0x1000, 64)
        sq = nic.create_sq(0x2000, 64, cq)
        nic.handle_write(sq.qpn * DOORBELL_STRIDE, (5).to_bytes(4, "big"))
        assert sq.pi == 5

    def test_unknown_sq_doorbell_raises(self):
        _sim, nic = make_nic()
        with pytest.raises(PcieError):
            nic.handle_write(42 * DOORBELL_STRIDE, (1).to_bytes(4, "big"))

    def test_rq_doorbell_posts_descriptors(self):
        sim, nic = make_nic()
        cq = nic.create_cq(0x1000, 64)
        rq = nic.create_rq(0x3000, 64, cq)
        offset = RQ_DOORBELL_BASE + rq.rqn * DOORBELL_STRIDE
        nic.handle_write(offset, (8).to_bytes(4, "big"))
        assert rq.available == 8
        # Replayed/stale doorbells (pi not advancing) are harmless.
        nic.handle_write(offset, (8).to_bytes(4, "big"))
        assert rq.available == 8

    def test_unknown_rq_doorbell_raises(self):
        _sim, nic = make_nic()
        with pytest.raises(PcieError):
            nic.handle_write(RQ_DOORBELL_BASE + 9 * DOORBELL_STRIDE,
                             (1).to_bytes(4, "big"))

    def test_mmio_wqe_stages_and_rings(self):
        sim, nic = make_nic()
        cq = nic.create_cq(0x1000, 64)
        sq = nic.create_sq(0x2000, 64, cq)
        wqe = TxWqe(OP_ETH_SEND, sq.qpn, 0, 0x9000, 64)
        nic.handle_write(WQE_MMIO_BASE + sq.qpn * WQE_MMIO_STRIDE,
                         wqe.pack())
        assert sq.pi == 1
        assert sq.stats_mmio_wqes == 1
        assert 0 in sq.mmio_wqes

    def test_mmio_wqe_for_unknown_sq_raises(self):
        _sim, nic = make_nic()
        wqe = TxWqe(OP_ETH_SEND, 3, 0, 0, 0)
        with pytest.raises(PcieError):
            nic.handle_write(WQE_MMIO_BASE + 3 * WQE_MMIO_STRIDE,
                             wqe.pack())

    def test_bar_reads_unsupported(self):
        _sim, nic = make_nic()
        with pytest.raises(PcieError):
            nic.handle_read(0, 4)


class TestControlInterface:
    def test_queue_numbering_monotone(self):
        _sim, nic = make_nic()
        cq = nic.create_cq(0x1000, 64)
        first = nic.create_sq(0x2000, 64, cq)
        second = nic.create_sq(0x3000, 64, cq)
        assert second.qpn == first.qpn + 1

    def test_resume_table_registration(self):
        _sim, nic = make_nic()
        first = nic.register_resume_table("after-accel")
        second = nic.register_resume_table("other")
        assert first != second
        assert nic._resume_tables[first] == "after-accel"

    def test_resume_id_reused_for_same_table(self):
        _sim, nic = make_nic()
        a = nic._resume_id_for("t")
        b = nic._resume_id_for("t")
        assert a == b

    def test_set_vport_default_queue_creates_vport(self):
        _sim, nic = make_nic()
        cq = nic.create_cq(0x1000, 64)
        rq = nic.create_rq(0x3000, 64, cq)
        nic.set_vport_default_queue(7, rq)
        assert 7 in nic.eswitch.vports

    def test_config_defaults(self):
        config = NicConfig()
        assert config.port_rate_bps == 25e9
        assert config.rdma_mtu == 1024
