"""Object lifecycle state machines behind the command channel.

Verbs semantics, enforced by the firmware: QPs walk RESET→INIT→RTR→RTS
(any state may drop to ERR or be torn back to RESET); destroys are
refcounted — an object referenced by another cannot go away first.
Every rejection carries a typed status code, never an exception
escaping the device.
"""

import pytest

from repro.nic import CmdStatus, RcQp
from repro.nic.cmd import DestroyObject, ModifyQp, QueryObject
from repro.sim import Simulator
from repro.sw import ControlPlaneError
from repro.testbed import HOST_MEM_BASE, make_local_node

FLD_MAC = "02:00:00:00:00:99"
FLD_IP = "10.0.0.99"

STATES = (RcQp.RESET, RcQp.INIT, RcQp.RTR, RcQp.RTS, RcQp.ERR)

#: The only ways forward; RESET and ERR are reachable from anywhere.
LEGAL_FORWARD = {
    (RcQp.RESET, RcQp.INIT),
    (RcQp.INIT, RcQp.RTR),
    (RcQp.RTR, RcQp.RTS),
}


def make_ctrl():
    sim = Simulator()
    node = make_local_node(sim)
    node.add_vport_for_mac(2, FLD_MAC)
    return sim, node, node.driver.ctrl


def make_qp(ctrl, ring=HOST_MEM_BASE + 0x20000):
    cq = ctrl.alloc_cq(ring, 64)
    rq_cq = ctrl.alloc_cq(ring + 0x1000, 64)
    rq = ctrl.alloc_rq(ring + 0x2000, 64, rq_cq)
    qp = ctrl.alloc_rc_qp(ring + 0x3000, 64, cq, rq, 2, FLD_MAC, FLD_IP)
    return qp


def drive_to(ctrl, qp, state):
    """Walk a fresh QP to ``state`` along the legal path."""
    path = {RcQp.RESET: (), RcQp.INIT: (RcQp.INIT,),
            RcQp.RTR: (RcQp.INIT, RcQp.RTR),
            RcQp.RTS: (RcQp.INIT, RcQp.RTR, RcQp.RTS),
            RcQp.ERR: (RcQp.ERR,)}[state]
    for step in path:
        ctrl.modify_qp(qp, step, remote_mac=FLD_MAC, remote_ip=FLD_IP,
                       remote_qpn=99)
    assert qp.state == state


class TestQpStateMachine:
    def test_every_transition_pair_accepted_or_typed_rejection(self):
        """Exhaustive: each (from, to) edge either succeeds or is
        refused with BAD_STATE — and the state only moves on success."""
        sim, node, ctrl = make_ctrl()
        for src in STATES:
            for dst in STATES:
                qp = make_qp(ctrl)
                drive_to(ctrl, qp, src)
                legal = (dst in (RcQp.RESET, RcQp.ERR)
                         or (src, dst) in LEGAL_FORWARD)
                result = node.nic.cmd.execute(ModifyQp(
                    qp=qp, state=dst, remote_mac=FLD_MAC,
                    remote_ip=FLD_IP, remote_qpn=99))
                if legal:
                    assert result.ok, (src, dst, result)
                    assert qp.state == dst
                else:
                    assert result.status == CmdStatus.BAD_STATE, (src, dst)
                    assert qp.state == src

    def test_unknown_state_is_bad_param(self):
        sim, node, ctrl = make_ctrl()
        qp = make_qp(ctrl)
        result = node.nic.cmd.execute(ModifyQp(qp=qp, state="warp"))
        assert result.status == CmdStatus.BAD_PARAM

    def test_rtr_without_remote_endpoint_is_bad_state(self):
        sim, node, ctrl = make_ctrl()
        qp = make_qp(ctrl)
        ctrl.modify_qp(qp, RcQp.INIT)
        result = node.nic.cmd.execute(ModifyQp(qp=qp, state=RcQp.RTR))
        assert result.status == CmdStatus.BAD_STATE
        assert qp.state == RcQp.INIT

    def test_reset_clears_transport_state_and_remote(self):
        sim, node, ctrl = make_ctrl()
        qp = make_qp(ctrl)
        ctrl.connect_qp(qp, FLD_MAC, FLD_IP, 42, rq_psn=5, sq_psn=9)
        assert qp.state == RcQp.RTS
        assert (qp.remote_qpn, qp.expected_psn, qp.next_psn) == (42, 5, 9)
        ctrl.modify_qp(qp, RcQp.RESET)
        assert qp.remote_qpn is None
        assert qp.next_psn == 0 and qp.expected_psn == 0

    def test_connect_qp_reconnects_from_any_state(self):
        sim, node, ctrl = make_ctrl()
        qp = make_qp(ctrl)
        ctrl.connect_qp(qp, FLD_MAC, FLD_IP, 42)
        ctrl.modify_qp(qp, RcQp.ERR)
        ctrl.connect_qp(qp, FLD_MAC, FLD_IP, 43)
        assert qp.state == RcQp.RTS
        assert qp.remote_qpn == 43


class TestHandleDiscipline:
    def test_query_and_destroy_unknown_handle(self):
        sim, node, ctrl = make_ctrl()
        for cmd in (QueryObject(handle=0xDEAD), DestroyObject(handle=0xDEAD)):
            result = node.nic.cmd.execute(cmd)
            assert result.status == CmdStatus.BAD_HANDLE

    def test_unregistered_object_is_bad_handle(self):
        sim, node, ctrl = make_ctrl()
        with pytest.raises(ControlPlaneError) as err:
            ctrl.modify_qp(object(), RcQp.INIT)
        assert err.value.status == CmdStatus.BAD_HANDLE

    def test_query_reports_qp_state(self):
        sim, node, ctrl = make_ctrl()
        qp = make_qp(ctrl)
        ctrl.connect_qp(qp, FLD_MAC, FLD_IP, 42)
        info = ctrl.query(qp)
        assert info["kind"] == "qp"
        assert info["state"] == RcQp.RTS


class TestRefcountedDestroy:
    def test_cq_pinned_by_its_sq(self):
        sim, node, ctrl = make_ctrl()
        cq = ctrl.alloc_cq(HOST_MEM_BASE + 0x20000, 64)
        sq = ctrl.alloc_sq(HOST_MEM_BASE + 0x21000, 64, cq, vport=2)
        with pytest.raises(ControlPlaneError) as err:
            ctrl.destroy(cq)
        assert err.value.status == CmdStatus.IN_USE
        # Dependency order: SQ first, then the CQ goes quietly.
        ctrl.destroy(sq)
        ctrl.destroy(cq)
        assert len(node.nic.cmd.table) == 2  # vport + its fdb rule

    def test_qp_pins_both_cq_and_rq(self):
        sim, node, ctrl = make_ctrl()
        cq = ctrl.alloc_cq(HOST_MEM_BASE + 0x20000, 64)
        rq_cq = ctrl.alloc_cq(HOST_MEM_BASE + 0x21000, 64)
        rq = ctrl.alloc_rq(HOST_MEM_BASE + 0x22000, 64, rq_cq)
        qp = ctrl.alloc_rc_qp(HOST_MEM_BASE + 0x23000, 64, cq, rq, 2,
                              FLD_MAC, FLD_IP)
        for pinned in (cq, rq):
            with pytest.raises(ControlPlaneError) as err:
                ctrl.destroy(pinned)
            assert err.value.status == CmdStatus.IN_USE
        ctrl.destroy(qp)
        for obj in (rq, rq_cq, cq):
            ctrl.destroy(obj)

    def test_default_route_pins_the_rq(self):
        sim, node, ctrl = make_ctrl()
        cq = ctrl.alloc_cq(HOST_MEM_BASE + 0x20000, 64)
        rq = ctrl.alloc_rq(HOST_MEM_BASE + 0x21000, 64, cq)
        ctrl.set_default_queue(2, rq)
        with pytest.raises(ControlPlaneError) as err:
            ctrl.destroy(rq)
        assert err.value.status == CmdStatus.IN_USE
        ctrl.clear_default_queue(2)
        ctrl.destroy(rq)
        ctrl.destroy(cq)

    def test_destroy_is_not_idempotent(self):
        sim, node, ctrl = make_ctrl()
        cq = ctrl.alloc_cq(HOST_MEM_BASE + 0x20000, 64)
        ctrl.destroy(cq)
        with pytest.raises(ControlPlaneError) as err:
            ctrl.destroy(cq)
        assert err.value.status == CmdStatus.BAD_HANDLE
        # ... but try_destroy shrugs it off (teardown paths lean on it).
        assert ctrl.try_destroy(cq) is False
