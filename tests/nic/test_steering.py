"""Unit tests for match-action steering."""

import pytest

from repro.net import Flow, PROTO_TCP, PROTO_UDP, fragment_packet, \
    vxlan_encapsulate
from repro.nic import (
    DecapVxlan,
    Disposition,
    Drop,
    ForwardToQueue,
    ForwardToUplink,
    ForwardToVport,
    GotoTable,
    MatchSpec,
    Meter,
    SetContextId,
    SteeringError,
    SteeringPipeline,
    ToAccelerator,
)


def make_packet(src_ip="10.0.0.1", dst_ip="10.0.0.2", sport=100, dport=200,
                proto=PROTO_UDP, dst_mac="02:00:00:00:00:02"):
    flow = Flow("02:00:00:00:00:01", dst_mac, src_ip, dst_ip, sport, dport,
                proto)
    return flow.make_packet(b"payload", fill_checksums=False)


class TestMatchSpec:
    def test_wildcard_matches_everything(self):
        assert MatchSpec().matches(make_packet())

    def test_dst_mac(self):
        spec = MatchSpec(dst_mac="02:00:00:00:00:02")
        assert spec.matches(make_packet())
        assert not spec.matches(make_packet(dst_mac="02:00:00:00:00:03"))

    def test_ips(self):
        assert MatchSpec(src_ip="10.0.0.1").matches(make_packet())
        assert not MatchSpec(dst_ip="9.9.9.9").matches(make_packet())

    def test_ports(self):
        assert MatchSpec(dst_port=200).matches(make_packet())
        assert not MatchSpec(src_port=999).matches(make_packet())

    def test_proto(self):
        assert MatchSpec(ip_proto=PROTO_UDP).matches(make_packet())
        assert not MatchSpec(ip_proto=PROTO_TCP).matches(make_packet())

    def test_is_fragment(self):
        packet = make_packet(proto=PROTO_TCP)
        packet.payload = bytes(3000)
        fragments = fragment_packet(packet, mtu=1500)
        assert MatchSpec(is_fragment=True).matches(fragments[0])
        assert not MatchSpec(is_fragment=True).matches(make_packet())
        assert MatchSpec(is_fragment=False).matches(make_packet())

    def test_vni(self):
        inner = make_packet()
        outer = vxlan_encapsulate(inner, 55, "02:aa:00:00:00:01",
                                  "02:aa:00:00:00:02", "1.1.1.1", "2.2.2.2")
        assert MatchSpec(vni=55).matches(outer)
        assert not MatchSpec(vni=56).matches(outer)

    def test_port_match_requires_l4(self):
        packet = make_packet(proto=PROTO_TCP)
        packet.payload = bytes(3000)
        tail = fragment_packet(packet, mtu=1500)[1]
        assert not MatchSpec(dst_port=200).matches(tail)


class TestPipeline:
    def test_priority_ordering(self):
        pipeline = SteeringPipeline()
        table = pipeline.table("root")
        table.add_rule(MatchSpec(), [ForwardToVport(1)], priority=1)
        table.add_rule(MatchSpec(), [ForwardToVport(2)], priority=10)
        result = pipeline.process(make_packet(), "root")
        assert result.kind == Disposition.VPORT and result.target == 2

    def test_default_action_on_miss(self):
        pipeline = SteeringPipeline()
        pipeline.table("root")  # default: drop
        result = pipeline.process(make_packet(), "root")
        assert result.kind == Disposition.DROP

    def test_goto_table_chains(self):
        pipeline = SteeringPipeline()
        pipeline.table("second").add_rule(MatchSpec(),
                                          [ForwardToUplink()])
        pipeline.table("root").add_rule(MatchSpec(),
                                        [GotoTable("second")])
        result = pipeline.process(make_packet(), "root")
        assert result.kind == Disposition.UPLINK

    def test_goto_unknown_table_raises(self):
        pipeline = SteeringPipeline()
        pipeline.table("root").add_rule(MatchSpec(), [GotoTable("ghost")])
        with pytest.raises(SteeringError):
            pipeline.process(make_packet(), "root")

    def test_loop_detection(self):
        pipeline = SteeringPipeline()
        pipeline.table("a").add_rule(MatchSpec(), [GotoTable("b")])
        pipeline.table("b").add_rule(MatchSpec(), [GotoTable("a")])
        with pytest.raises(SteeringError):
            pipeline.process(make_packet(), "a")

    def test_set_context_id_carried(self):
        pipeline = SteeringPipeline()
        pipeline.table("root").add_rule(
            MatchSpec(), [SetContextId(42), ForwardToVport(1)])
        result = pipeline.process(make_packet(), "root")
        assert result.context_id == 42
        assert result.packet.meta["context_id"] == 42

    def test_meter_collected(self):
        pipeline = SteeringPipeline()
        pipeline.table("root").add_rule(
            MatchSpec(), [Meter("tenant1"), Drop()])
        result = pipeline.process(make_packet(), "root")
        assert result.meters == ["tenant1"]

    def test_decap_then_match_inner(self):
        pipeline = SteeringPipeline()
        pipeline.table("inner").add_rule(MatchSpec(dst_port=200),
                                         [ForwardToVport(3)])
        pipeline.table("root").add_rule(
            MatchSpec(vni=9), [DecapVxlan(), GotoTable("inner")])
        inner = make_packet()
        outer = vxlan_encapsulate(inner, 9, "02:aa:00:00:00:01",
                                  "02:aa:00:00:00:02", "1.1.1.1",
                                  "2.2.2.2")
        result = pipeline.process(outer, "root")
        assert result.kind == Disposition.VPORT and result.target == 3
        assert result.packet.meta["vxlan_vni"] == 9

    def test_accelerator_action_carries_resume(self):
        pipeline = SteeringPipeline()
        marker = object()
        pipeline.table("root").add_rule(
            MatchSpec(), [ToAccelerator(marker, "resume-here", 7)])
        result = pipeline.process(make_packet(), "root")
        assert result.kind == Disposition.ACCELERATOR
        assert result.target is marker
        assert result.next_table == "resume-here"
        assert result.context_id == 7

    def test_queue_delivery(self):
        pipeline = SteeringPipeline()
        marker = object()
        pipeline.table("root").add_rule(MatchSpec(),
                                        [ForwardToQueue(marker)])
        result = pipeline.process(make_packet(), "root")
        assert result.kind == Disposition.DELIVER and result.target is marker

    def test_rule_without_actions_rejected(self):
        pipeline = SteeringPipeline()
        with pytest.raises(SteeringError):
            pipeline.table("root").add_rule(MatchSpec(), [])

    def test_rule_removal(self):
        pipeline = SteeringPipeline()
        table = pipeline.table("root")
        rule = table.add_rule(MatchSpec(), [ForwardToVport(1)])
        table.remove_rule(rule)
        assert pipeline.process(make_packet(), "root").kind == \
            Disposition.DROP

    def test_unknown_root_rejected(self):
        with pytest.raises(SteeringError):
            SteeringPipeline().process(make_packet(), "nope")
