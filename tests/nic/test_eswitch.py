"""Unit tests for the eSwitch, vPorts and Ethernet ports."""

import pytest

from repro.net import Flow, Packet
from repro.nic import (
    Disposition,
    ESwitch,
    EthernetPort,
    ForwardToQueue,
    ForwardToVport,
    MatchSpec,
)
from repro.sim import Simulator


def frame(dst_mac="02:00:00:00:00:02"):
    flow = Flow("02:00:00:00:00:01", dst_mac, "10.0.0.1", "10.0.0.2",
                1, 2)
    return flow.make_packet(b"x" * 64, fill_checksums=False)


class TestEthernetPort:
    def test_back_to_back_delivery(self):
        sim = Simulator()
        a = EthernetPort(sim, "a", rate_bps=25e9, latency=1e-6)
        b = EthernetPort(sim, "b", rate_bps=25e9, latency=1e-6)
        a.connect(b)
        received = []
        b.on_receive = received.append
        packet = frame()
        a.send(packet)
        sim.run()
        assert received == [packet]
        assert a.stats_tx_packets == 1
        assert b.stats_rx_packets == 1

    def test_wire_serialization_paces_delivery(self):
        sim = Simulator()
        a = EthernetPort(sim, "a", rate_bps=1e9, latency=0.0)
        b = EthernetPort(sim, "b", rate_bps=1e9, latency=0.0)
        a.connect(b)
        times = []
        b.on_receive = lambda p: times.append(sim.now)
        for _ in range(3):
            a.send(frame())
        sim.run()
        wire_time = frame().wire_size() * 8 / 1e9
        assert times[1] - times[0] == pytest.approx(wire_time)


def build_eswitch(sim):
    port = EthernetPort(sim, "uplink")
    delivered = []
    eswitch = ESwitch(sim, port,
                      lambda vport, d: delivered.append((vport, d)))
    return eswitch, port, delivered


class TestESwitch:
    def test_add_vport_twice_rejected(self):
        sim = Simulator()
        eswitch, _port, _d = build_eswitch(sim)
        eswitch.add_vport(1)
        with pytest.raises(ValueError):
            eswitch.add_vport(1)

    def test_ingress_routes_to_vport_queue(self):
        sim = Simulator()
        eswitch, _port, delivered = build_eswitch(sim)
        vport = eswitch.add_vport(1)
        marker = object()
        eswitch.pipeline.table(ESwitch.FDB_ROOT).add_rule(
            MatchSpec(dst_mac="02:00:00:00:00:02"), [ForwardToVport(1)],
            priority=1)
        eswitch.pipeline.table(vport.rx_root).default_actions = [
            ForwardToQueue(marker)]
        eswitch.ingress_from_wire(frame())
        assert len(delivered) == 1
        assert delivered[0][1].target is marker
        assert vport.stats_rx == 1

    def test_wire_miss_is_dropped_not_hairpinned(self):
        sim = Simulator()
        eswitch, port, _d = build_eswitch(sim)
        peer = EthernetPort(sim, "peer")
        port.connect(peer)
        eswitch.ingress_from_wire(frame("02:00:00:00:99:99"))
        sim.run()
        assert port.stats_tx_packets == 0
        assert eswitch.stats_fdb_drops == 1

    def test_vport_to_vport_loopback(self):
        sim = Simulator()
        eswitch, _port, delivered = build_eswitch(sim)
        eswitch.add_vport(1)
        vport2 = eswitch.add_vport(2)
        marker = object()
        eswitch.pipeline.table(ESwitch.FDB_ROOT).add_rule(
            MatchSpec(dst_mac="02:00:00:00:00:02"), [ForwardToVport(2)],
            priority=1)
        eswitch.pipeline.table(vport2.rx_root).default_actions = [
            ForwardToQueue(marker)]
        eswitch.egress_from_vport(1, frame())
        assert eswitch.stats_loopback == 1
        assert delivered and delivered[0][1].target is marker

    def test_egress_default_goes_to_uplink(self):
        sim = Simulator()
        eswitch, port, _d = build_eswitch(sim)
        eswitch.add_vport(1)
        peer = EthernetPort(sim, "peer")
        port.connect(peer)
        received = []
        peer.on_receive = received.append
        eswitch.egress_from_vport(1, frame("02:00:00:00:99:99"))
        sim.run()
        assert len(received) == 1
        assert eswitch.stats_to_uplink == 1

    def test_pre_rx_hook_consumes(self):
        sim = Simulator()
        eswitch, _port, delivered = build_eswitch(sim)
        eswitch.add_vport(1)
        eswitch.pipeline.table(ESwitch.FDB_ROOT).add_rule(
            MatchSpec(), [ForwardToVport(1)], priority=1)
        eswitch.pre_rx_hook = lambda vport, packet: True
        eswitch.ingress_from_wire(frame())
        assert delivered == []  # the hook ate it

    def test_guest_tx_table(self):
        """A vPort's egress pipeline can override the FDB."""
        sim = Simulator()
        eswitch, _port, delivered = build_eswitch(sim)
        vport = eswitch.add_vport(1)
        vport2 = eswitch.add_vport(2)
        marker = object()
        vport.tx_root = "vport1.tx"
        eswitch.pipeline.table("vport1.tx").default_actions = [
            ForwardToVport(2)]
        eswitch.pipeline.table(vport2.rx_root).default_actions = [
            ForwardToQueue(marker)]
        eswitch.egress_from_vport(1, frame("02:00:00:00:99:99"))
        assert delivered and delivered[0][1].target is marker
