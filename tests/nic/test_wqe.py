"""Unit tests for NIC descriptor formats."""

import pytest

from repro.nic import (
    CQE_FLAG_L4_OK,
    CQE_RECV_COMPLETION,
    CQE_SIZE,
    Cqe,
    OP_ETH_SEND,
    RX_DESC_SIZE,
    RxDesc,
    TxWqe,
    WQE_FLAG_SIGNALED,
    WQE_SIZE,
)
from repro.nic.wqe import CQE_ERROR


class TestTxWqe:
    def test_size_is_64(self):
        wqe = TxWqe(OP_ETH_SEND, 1, 0, 0x1000, 100)
        assert len(wqe.pack()) == WQE_SIZE == 64

    def test_roundtrip(self):
        wqe = TxWqe(OP_ETH_SEND, qpn=42, wqe_index=77,
                    buffer_addr=0x1234_5678_9ABC, byte_count=1500,
                    flags=WQE_FLAG_SIGNALED, lkey=3, context_id=0xBEEF,
                    ack_req=False)
        again = TxWqe.unpack(wqe.pack())
        assert again.qpn == 42
        assert again.wqe_index == 77
        assert again.buffer_addr == 0x1234_5678_9ABC
        assert again.byte_count == 1500
        assert again.signaled
        assert again.context_id == 0xBEEF
        assert not again.ack_req

    def test_wqe_index_wraps_16bit(self):
        wqe = TxWqe(OP_ETH_SEND, 1, 0x12345, 0, 0)
        assert wqe.wqe_index == 0x2345

    def test_truncated_rejected(self):
        with pytest.raises(ValueError):
            TxWqe.unpack(b"\x00" * 8)


class TestRxDesc:
    def test_size_is_16(self):
        desc = RxDesc(0xABCD, 2048)
        assert len(desc.pack()) == RX_DESC_SIZE == 16

    def test_roundtrip(self):
        desc = RxDesc(0xDEAD_BEEF_0000, 4096, lkey=9)
        again = RxDesc.unpack(desc.pack())
        assert again.buffer_addr == 0xDEAD_BEEF_0000
        assert again.byte_count == 4096
        assert again.lkey == 9


class TestCqe:
    def test_size_is_64(self):
        cqe = Cqe(CQE_RECV_COMPLETION, 1, 2, 3)
        assert len(cqe.pack()) == CQE_SIZE == 64

    def test_roundtrip(self):
        cqe = Cqe(CQE_RECV_COMPLETION, qpn=5, wqe_counter=100,
                  byte_count=1400, flags=CQE_FLAG_L4_OK, rss_hash=0xFACE,
                  flow_tag=0x10002, stride_index=7, syndrome=0)
        again = Cqe.unpack(cqe.pack())
        assert again.qpn == 5
        assert again.wqe_counter == 100
        assert again.byte_count == 1400
        assert again.l4_ok
        assert again.rss_hash == 0xFACE
        assert again.flow_tag == 0x10002
        assert again.stride_index == 7

    def test_error_detection(self):
        assert Cqe(CQE_ERROR, 1, 0, 0, syndrome=4).is_error
        assert not Cqe(CQE_RECV_COMPLETION, 1, 0, 0).is_error
