"""Differential harness: the batched datapath against the scalar one.

The batched fast paths (vectorized WQE/CQE/descriptor codecs, cuckoo
batch probes, template frame encoding, bulk store drains) claim to be
*bit-identical* to the scalar code they replace.  This suite is the
proof: every experiment driver runs twice in one process — once with
``repro.batching`` enabled, once forced onto the scalar path — and the
two result dictionaries must compare exactly equal (``==`` on floats,
not approximately).

A mismatch here means a batched routine computed something its scalar
twin would not — a datapath bug even if every other test still passes.
"""

import hashlib
import json
import os
import random

import pytest

from repro import batching

GOLDEN = os.path.join(os.path.dirname(__file__), os.pardir, "golden",
                      "topology_identity.json")


def canonical_digest(result) -> str:
    blob = json.dumps(result, sort_keys=True, separators=(",", ":"),
                      default=str)
    return hashlib.sha256(blob.encode()).hexdigest()


def run_both(case):
    """Run ``case`` once per mode; returns (batched, scalar) results."""
    previous = batching.set_batch_enabled(True)
    try:
        batched = case()
        batching.set_batch_enabled(False)
        scalar = case()
    finally:
        batching.set_batch_enabled(previous)
    return batched, scalar


def _echo_remote():
    from repro.experiments.echo import echo_throughput
    random.seed(1234)
    return echo_throughput("flde-remote", 64, count=150)


def _echo_local():
    from repro.experiments.echo import echo_throughput
    random.seed(1234)
    return echo_throughput("flde-local", 256, count=150)


def _echo_cpu_remote():
    # cpu-remote drives the NIC's WQE ring-fetch loop, i.e. the
    # TxWqe.unpack_many and RxDesc.unpack_many burst decoders.
    from repro.experiments.echo import echo_throughput
    random.seed(1234)
    return echo_throughput("cpu-remote", 512, count=150)


def _echo_latency():
    from repro.experiments.echo import echo_latency
    random.seed(99)
    return echo_latency("flde", count=100)


def _zuc():
    from repro.experiments.zuc import fld_throughput
    random.seed(5)
    return fld_throughput(512, count=80)


def _iot():
    from repro.experiments.iot import line_rate_point
    return line_rate_point(512, duration=0.1e-3)


def _defrag():
    from repro.experiments.defrag import run as defrag_run
    random.seed(11)
    return defrag_run("hw-defrag", rounds=4)


def _scale_tenants():
    from repro.experiments.scale_tenants import throughput
    random.seed(21)
    return throughput(2, size=256, count=80)


def _prog():
    from repro.experiments.prog import echo_fingerprint
    random.seed(31)
    return echo_fingerprint(size=256, count=80)


CASES = {
    "echo_flde_remote": _echo_remote,
    "echo_flde_local": _echo_local,
    "echo_cpu_remote": _echo_cpu_remote,
    "echo_latency_flde": _echo_latency,
    "zuc_fld": _zuc,
    "iot_line_rate": _iot,
    "defrag": _defrag,
    "scale_tenants": _scale_tenants,
    "prog_echo": _prog,
}


class TestScalarBatchedEquality:
    @pytest.mark.parametrize("name", sorted(CASES))
    def test_fingerprint_identical_across_modes(self, name):
        batched, scalar = run_both(CASES[name])
        assert batched == scalar, (
            f"{name}: batched datapath diverged from the scalar path"
        )
        assert canonical_digest(batched) == canonical_digest(scalar)

    def test_mode_switch_is_restored(self):
        before = batching.batch_enabled()
        run_both(lambda: None)
        assert batching.batch_enabled() == before


class TestTopologyIdentityGoldens:
    """The committed topology-identity goldens pin the *scalar* numbers
    too: both modes must land on the same fixture, digit for digit."""

    @pytest.fixture(scope="class")
    def golden(self):
        with open(GOLDEN, encoding="utf-8") as fh:
            return json.load(fh)

    @pytest.mark.parametrize("mode", [True, False],
                             ids=["batched", "scalar"])
    def test_flde_echo_remote(self, golden, mode):
        from repro.experiments.echo import echo_throughput
        previous = batching.set_batch_enabled(mode)
        try:
            random.seed(1234)
            result = echo_throughput("flde-remote", 256, count=400)
        finally:
            batching.set_batch_enabled(previous)
        assert result == golden["flde_echo_remote"]

    @pytest.mark.parametrize("mode", [True, False],
                             ids=["batched", "scalar"])
    def test_flde_latency(self, golden, mode):
        from repro.experiments.echo import echo_latency
        previous = batching.set_batch_enabled(mode)
        try:
            random.seed(99)
            result = echo_latency("flde", count=300)
        finally:
            batching.set_batch_enabled(previous)
        assert result == golden["flde_latency"]


class TestAuditCleanliness:
    """The invariant auditor and the span layer stay clean when the
    batched paths are active (and when they are not)."""

    def test_prog_audit_clean_in_both_modes(self):
        batched, scalar = run_both(_prog)
        assert batched["violations"] == 0
        assert scalar["violations"] == 0

    def test_scale_tenants_audit_clean_in_both_modes(self):
        batched, scalar = run_both(_scale_tenants)
        assert batched["violations"] == 0
        assert scalar["violations"] == 0
        assert batched["received"] == batched["sent"]
