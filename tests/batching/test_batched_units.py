"""Unit-level lockstep checks for the batched datapath building blocks.

Where ``test_differential.py`` proves whole experiments match across
modes, these tests pin each batched routine against its scalar twin
directly: ring-read WQE generation, translation-pool batch lookups,
burst receive delivery, bulk store drains and the load generator's
template frame encoder.
"""

import random
import types

import pytest

from repro import batching
from repro.core import (
    AxisMetadata,
    BufferPool,
    CompressedCqe,
    RxRingManager,
    TranslationError,
    TxRingManager,
)
from repro.net.flows import Flow
from repro.net.ip import PROTO_TCP, PROTO_UDP
from repro.nic import CQE_RECV_COMPLETION, WQE_SIZE
from repro.sim import Simulator, Store


@pytest.fixture
def both_modes():
    """Restore the process-wide batching mode after each test."""
    previous = batching.batch_enabled()
    yield
    batching.set_batch_enabled(previous)


def make_tx():
    sim = Simulator()
    pool = BufferPool(16 * 1024, chunk_size=256)
    return sim, TxRingManager(sim, pool, 64, bar_base=0x1000_0000)


class TestBatchedRingRead:
    def test_batched_ring_read_matches_scalar_bytes(self, both_modes):
        _sim, tx = make_tx()
        tx.add_queue(0, qpn=9, entries=16, doorbell_addr=0, mmio_addr=0)
        for i in range(6):
            tx.submit(0, bytes([i]) * (80 + i), AxisMetadata(queue_id=0))
        batching.set_batch_enabled(True)
        batched = tx.handle_ring_read(0, 0, 6 * WQE_SIZE)
        batching.set_batch_enabled(False)
        scalar = tx.handle_ring_read(0, 0, 6 * WQE_SIZE)
        assert batched == scalar
        # ...and both equal the per-WQE reads stitched together.
        singles = b"".join(
            tx.handle_ring_read(0, i * WQE_SIZE, WQE_SIZE)
            for i in range(6)
        )
        assert batched == singles

    def test_batched_ring_read_of_unposted_slot_raises(self, both_modes):
        _sim, tx = make_tx()
        tx.add_queue(0, qpn=9, entries=16, doorbell_addr=0, mmio_addr=0)
        tx.submit(0, b"x" * 64, AxisMetadata(queue_id=0))
        batching.set_batch_enabled(True)
        with pytest.raises(TranslationError):
            tx.handle_ring_read(0, 0, 4 * WQE_SIZE)

    def test_descriptor_pool_lookup_many(self, both_modes):
        _sim, tx = make_tx()
        tx.add_queue(0, qpn=9, entries=16, doorbell_addr=0, mmio_addr=0)
        for i in range(5):
            tx.submit(0, bytes(64), AxisMetadata(queue_id=0))
        batching.set_batch_enabled(True)
        many = tx.descriptors.lookup_many(0, range(5))
        singles = [tx.descriptors.lookup(0, i) for i in range(5)]
        assert many == singles  # same objects from the shared pool
        with pytest.raises(TranslationError):
            tx.descriptors.lookup_many(0, [0, 1, 99])


class TestBurstReceiveDelivery:
    def _manager_with_packets(self, count):
        sim = Simulator()
        emitted = []
        rx = RxRingManager(sim, capacity_bytes=64 * 1024,
                           emit=lambda data, meta: emitted.append(
                               (data, meta.queue_id, meta.context_id)))
        rx.add_binding(3, ring_entries=8, strides_per_buffer=4,
                       stride_size=512, rq_doorbell_addr=0x40)
        cqes = []
        for i in range(count):
            payload = bytes([i]) * (60 + i)
            rx.handle_buffer_write((i // 4) * 2048 + (i % 4) * 512,
                                   payload)
            cqes.append(CompressedCqe(
                CQE_RECV_COMPLETION, qpn=7, wqe_counter=i // 4,
                byte_count=len(payload), flow_tag=i, stride_index=i % 4))
        return rx, cqes, emitted

    def test_burst_matches_serial_delivery(self):
        rx_a, cqes_a, out_a = self._manager_with_packets(10)
        rx_b, cqes_b, out_b = self._manager_with_packets(10)
        for cqe in cqes_a:
            rx_a.on_recv_completion(3, cqe)
        rx_b.on_recv_completions(3, cqes_b)
        assert out_a == out_b
        binding_a, binding_b = rx_a.binding(3), rx_b.binding(3)
        for field in ("stats_packets", "stats_bytes", "stats_recycled",
                      "pi", "recycled"):
            assert getattr(binding_a, field) == getattr(binding_b, field)
        assert rx_a.stats_cqes == rx_b.stats_cqes


class TestStoreTryGetMany:
    def test_bulk_drain_matches_repeated_try_get(self):
        sim = Simulator()
        a = Store(sim, capacity=32, name="a")
        b = Store(sim, capacity=32, name="b")
        for i in range(10):
            a.try_put(i)
            b.try_put(i)
        drained = a.try_get_many()
        singles = []
        while True:
            item = b.try_get()
            if item is None:
                break
            singles.append(item)
        assert drained == singles == list(range(10))

    def test_limit_stops_the_drain(self):
        sim = Simulator()
        store = Store(sim, capacity=32, name="s")
        for i in range(8):
            store.try_put(i)
        assert store.try_get_many(limit=3) == [0, 1, 2]
        assert store.try_get_many() == [3, 4, 5, 6, 7]
        assert store.try_get_many() == []


class TestLoadGenTemplates:
    """The template frame encoder produces byte-identical frames."""

    def _loadgen(self, flow_seed, proto=PROTO_UDP):
        from repro.host.testpmd import LoadGenerator
        sim = Simulator()
        random.seed(flow_seed)  # pins the flow's initial IP ident
        flow = Flow("02:00:00:00:00:01", "02:00:00:00:ff:01",
                    "10.0.0.1", "10.0.1.1", 40000, 5201, proto=proto)
        qp = types.SimpleNamespace(sim=sim, on_receive=None)
        return LoadGenerator(sim, qp, flow)

    @pytest.mark.parametrize("sizes", [
        [64, 64, 64, 64],           # steady-state template reuse
        [64, 128, 64, 1500, 42],    # size changes + minimum-frame edge
        [40, 41, 50, 40],           # payload shorter than the seq stamp
    ])
    def test_frames_identical_across_modes(self, both_modes, sizes):
        gen_batched = self._loadgen(77)
        gen_scalar = self._loadgen(77)
        frames_batched, frames_scalar = [], []
        for size in sizes:
            batching.set_batch_enabled(True)
            frames_batched.append(gen_batched._make_frame(size))
            batching.set_batch_enabled(False)
            frames_scalar.append(gen_scalar._make_frame(size))
        assert frames_batched == frames_scalar
        assert gen_batched._seq == gen_scalar._seq
        assert gen_batched.flow._ident == gen_scalar.flow._ident

    def test_tcp_flows_take_the_scalar_builder(self, both_modes):
        batching.set_batch_enabled(True)
        gen = self._loadgen(5, proto=PROTO_TCP)
        assert gen._frame_from_template(256) is None
        twin = self._loadgen(5, proto=PROTO_TCP)
        batched = gen._make_frame(256)
        batching.set_batch_enabled(False)
        scalar = twin._make_frame(256)
        assert batched == scalar

    def test_flow_mutation_invalidates_the_template(self, both_modes):
        batching.set_batch_enabled(True)
        gen = self._loadgen(9)
        first = gen._make_frame(128)
        gen.flow.dst_port = 9999
        mutated = gen._make_frame(128)
        twin = self._loadgen(9)
        twin.flow.dst_port = 9999
        batching.set_batch_enabled(False)
        twin._make_frame(128)  # consume seq 0 / first ident
        expected = twin._make_frame(128)
        assert mutated == expected
        assert first != mutated
